(* Availability profile as an indexed step timeline.

   The step function is stored in two parallel growable arrays
   [dates]/[free]: segment [i] spans [dates.(i), dates.(i+1)) (the last
   segment extends to +infinity) with [free.(i)] processors free.
   Invariants:
   - dates are strictly increasing and dates.(0) = the origin (0 at
     creation, advanced monotonically by {!compact});
   - 0 <= free.(i) <= capacity;
   - adjacent segments have different levels (always merged).

   Compaction: once a simulation clock has passed a date, the history
   before it can never influence a future query (all windows are
   clamped to the origin), so [compact t ~before] folds the segments
   left of [before] into three scalars — folded proc-seconds of busy
   time, folded span, folded segment count — and drops them.  Live
   memory is then O(live horizon) rather than O(total jobs placed);
   the scalars keep utilisation computable over the whole run.

   Complexity, with k breakpoints: [free_at] is O(log k);
   [reserve]/[release] binary-search the window and touch only the
   overlapping segments (at most two insertions and two merges, each a
   blit); [find_start] is a single sweep from [earliest] that anchors
   candidate starts at the ends of insufficient segments, so every
   breakpoint is visited at most once.  The previous implementation
   (kept verbatim as {!Profile_reference}, the oracle of the property
   tests) rebuilt the whole assoc list per update and re-scanned it per
   candidate start: O(k) allocation per update, O(k^2) per search. *)

type t = {
  capacity : int;
  mutable dates : float array;
  mutable free : int array;
  mutable len : int;
  mutable peak : int;
  mutable n_reserve : int;
  mutable n_release : int;
  mutable n_search : int;
  mutable n_compact : int;
  mutable folded_segments : int;
  mutable folded_busy : float;
  mutable folded_span : float;
}

type stats = {
  segments : int;
  peak_segments : int;
  reserves : int;
  releases : int;
  searches : int;
  compactions : int;
  folded_segments : int;
  folded_busy : float;
  folded_span : float;
}

let create m =
  if m < 1 then invalid_arg "Profile.create: capacity must be >= 1";
  {
    capacity = m;
    dates = Array.make 8 0.0;
    free = Array.make 8 m;
    len = 1;
    peak = 1;
    n_reserve = 0;
    n_release = 0;
    n_search = 0;
    n_compact = 0;
    folded_segments = 0;
    folded_busy = 0.0;
    folded_span = 0.0;
  }

let capacity t = t.capacity
let origin t = t.dates.(0)

let copy t = { t with dates = Array.copy t.dates; free = Array.copy t.free }

let stats t =
  {
    segments = t.len;
    peak_segments = t.peak;
    reserves = t.n_reserve;
    releases = t.n_release;
    searches = t.n_search;
    compactions = t.n_compact;
    folded_segments = t.folded_segments;
    folded_busy = t.folded_busy;
    folded_span = t.folded_span;
  }

(* Index of the segment containing [date]: greatest i with
   dates.(i) <= date (clamped to 0 for dates before the origin). *)
let seg_index t date =
  if date <= t.dates.(0) then 0
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.dates.(mid) <= date then lo := mid else hi := mid - 1
    done;
    !lo
  end

let free_at t date = t.free.(seg_index t date)

let breakpoints t = List.init t.len (fun i -> (t.dates.(i), t.free.(i)))

let events t =
  List.init t.len (fun i ->
      if i = 0 then (t.dates.(0), t.free.(0) - t.capacity)
      else (t.dates.(i), t.free.(i) - t.free.(i - 1)))

let grow t extra =
  let need = t.len + extra in
  let cap = Array.length t.dates in
  if need > cap then begin
    let cap' = max need (2 * cap) in
    let dates = Array.make cap' 0.0 and free = Array.make cap' 0 in
    Array.blit t.dates 0 dates 0 t.len;
    Array.blit t.free 0 free 0 t.len;
    t.dates <- dates;
    t.free <- free
  end

let insert t i date level =
  grow t 1;
  Array.blit t.dates i t.dates (i + 1) (t.len - i);
  Array.blit t.free i t.free (i + 1) (t.len - i);
  t.dates.(i) <- date;
  t.free.(i) <- level;
  t.len <- t.len + 1

(* Merge segment [i] into [i-1] when their levels became equal. *)
let merge_at t i =
  if i > 0 && i < t.len && t.free.(i) = t.free.(i - 1) then begin
    Array.blit t.dates (i + 1) t.dates i (t.len - i - 1);
    Array.blit t.free (i + 1) t.free i (t.len - i - 1);
    t.len <- t.len - 1
  end

(* Apply [delta] on [start, stop), touching only overlapping segments.
   Bounds are validated on the overlap before any mutation, so a failed
   call leaves the profile unchanged. *)
let update t ~start ~stop ~delta =
  assert (start < stop);
  let start = Float.max start t.dates.(0) in
  if delta <> 0 && start < stop then begin
    let i0 = seg_index t start in
    let j = ref i0 in
    while !j < t.len && t.dates.(!j) < stop do
      let f = t.free.(!j) + delta in
      if f < 0 then invalid_arg "Profile: availability would become negative";
      if f > t.capacity then invalid_arg "Profile: availability would exceed capacity";
      incr j
    done;
    (* Split so breakpoints exist exactly at [start] and [stop]. *)
    let i0 =
      if t.dates.(i0) < start then begin
        insert t (i0 + 1) start t.free.(i0);
        i0 + 1
      end
      else i0
    in
    let jl = ref i0 in
    while !jl + 1 < t.len && t.dates.(!jl + 1) < stop do incr jl done;
    if Float.is_finite stop && (!jl = t.len - 1 || t.dates.(!jl + 1) > stop) then
      insert t (!jl + 1) stop t.free.(!jl);
    for k = i0 to !jl do
      t.free.(k) <- t.free.(k) + delta
    done;
    (* Only the two seams can need re-merging: interior neighbours moved
       by the same delta, so they still differ. *)
    merge_at t (!jl + 1);
    merge_at t i0;
    t.peak <- max t.peak t.len
  end

let reserve t ~start ~duration ~procs =
  if duration <= 0.0 then invalid_arg "Profile.reserve: duration must be positive";
  if procs < 0 then invalid_arg "Profile.reserve: negative procs";
  t.n_reserve <- t.n_reserve + 1;
  if procs > 0 then update t ~start ~stop:(start +. duration) ~delta:(-procs)

let release t ~start ~duration ~procs =
  if duration <= 0.0 then invalid_arg "Profile.release: duration must be positive";
  if procs < 0 then invalid_arg "Profile.release: negative procs";
  t.n_release <- t.n_release + 1;
  if procs > 0 then update t ~start ~stop:(start +. duration) ~delta:procs

let release_window t ~start ~stop ~procs =
  if stop <= start then invalid_arg "Profile.release_window: empty window";
  if procs < 0 then invalid_arg "Profile.release_window: negative procs";
  t.n_release <- t.n_release + 1;
  if procs > 0 then update t ~start ~stop ~delta:procs

let find_start t ~earliest ~duration ~procs =
  t.n_search <- t.n_search + 1;
  if procs > t.capacity then raise Not_found;
  let earliest = Float.max earliest t.dates.(0) in
  (* Sweep once: a candidate start is [earliest] or the end of an
     insufficient segment; while a candidate holds, extend the covered
     window segment by segment instead of re-testing from scratch. *)
  let rec sweep j anchor =
    if t.free.(j) >= procs then begin
      let seg_end = if j + 1 < t.len then t.dates.(j + 1) else infinity in
      if duration <= 0.0 || seg_end >= anchor +. duration then anchor
      else sweep (j + 1) anchor
    end
    else if j + 1 >= t.len then raise Not_found
    else sweep (j + 1) t.dates.(j + 1)
  in
  sweep (seg_index t earliest) earliest

let place t ~earliest ~duration ~procs =
  let start = find_start t ~earliest ~duration ~procs in
  if duration > 0.0 then reserve t ~start ~duration ~procs;
  start

(* Fold everything strictly before [before] into the scalar aggregates
   and drop it.  The first remaining segment keeps its level but now
   starts at [before]; queries before the origin clamp to it, exactly
   as pre-compaction queries before 0 clamped to 0. *)
let compact t ~before =
  if not (Float.is_finite before) then
    invalid_arg "Profile.compact: non-finite date";
  if before <= t.dates.(0) then 0
  else begin
    let i = seg_index t before in
    let busy = ref 0.0 in
    for k = 0 to i - 1 do
      busy :=
        !busy +. (float_of_int (t.capacity - t.free.(k)) *. (t.dates.(k + 1) -. t.dates.(k)))
    done;
    busy := !busy +. (float_of_int (t.capacity - t.free.(i)) *. (before -. t.dates.(i)));
    t.folded_busy <- t.folded_busy +. !busy;
    t.folded_span <- t.folded_span +. (before -. t.dates.(0));
    t.folded_segments <- t.folded_segments + i;
    t.n_compact <- t.n_compact + 1;
    if i > 0 then begin
      Array.blit t.dates i t.dates 0 (t.len - i);
      Array.blit t.free i t.free 0 (t.len - i);
      t.len <- t.len - i
    end;
    t.dates.(0) <- before;
    i
  end

let holes t ~until =
  let acc = ref [] in
  let continue = ref true in
  let i = ref 0 in
  while !continue && !i < t.len do
    let s = t.dates.(!i) in
    let next = if !i + 1 < t.len then t.dates.(!i + 1) else infinity in
    let stop = Float.min next until in
    if t.free.(!i) > 0 && s < stop then acc := (s, stop, t.free.(!i)) :: !acc;
    if next >= until then continue := false else incr i
  done;
  List.rev !acc

let usage_timeline demands =
  let total = List.fold_left (fun acc (_, _, p) -> acc + max p 0) 0 demands in
  let t = create (max 1 total) in
  List.iter
    (fun (start, stop, procs) ->
      if procs > 0 && stop > start && stop > 0.0 then update t ~start ~stop ~delta:(-procs))
    demands;
  List.init t.len (fun i -> (t.dates.(i), t.capacity - t.free.(i)))

let pp ppf t =
  let pp_step ppf (s, f) = Format.fprintf ppf "%g->%d" s f in
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_step)
    (breakpoints t)
