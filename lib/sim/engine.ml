open Psched_util

type event = { date : float; seq : int; action : unit -> unit }

type t = { mutable clock : float; mutable next_seq : int; queue : event Heap.t }

let compare_event a b =
  let c = compare a.date b.date in
  if c <> 0 then c else compare a.seq b.seq

let create ?(now = 0.0) () = { clock = now; next_seq = 0; queue = Heap.create ~cmp:compare_event }
let now t = t.clock

let at t date action =
  if date < t.clock then invalid_arg "Engine.at: date in the past";
  Heap.add t.queue { date; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let after t delay action =
  if delay < 0.0 then invalid_arg "Engine.after: negative delay";
  at t (t.clock +. delay) action

let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.date;
    ev.action ();
    true

let run ?until t =
  let continue () =
    match Heap.min t.queue, until with
    | None, _ -> false
    | Some _, None -> true
    | Some ev, Some limit -> ev.date <= limit
  in
  while continue () do
    ignore (step t)
  done;
  match until with Some limit when limit > t.clock && Heap.is_empty t.queue -> () | _ -> ()
