open Psched_util

type event = { date : float; seq : int; action : unit -> unit; mutable live : bool }
type handle = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable live_count : int;
  queue : event Heap.t;
  mutable obs : Psched_obs.Obs.t;
}

let compare_event a b =
  let c = compare a.date b.date in
  if c <> 0 then c else compare a.seq b.seq

let create ?(obs = Psched_obs.Obs.null) ?(now = 0.0) () =
  let t =
    { clock = now; next_seq = 0; live_count = 0; queue = Heap.create ~cmp:compare_event; obs }
  in
  if Psched_obs.Obs.enabled obs then Psched_obs.Obs.set_clock obs (fun () -> t.clock);
  t

let now t = t.clock

let obs t = t.obs

let set_obs t obs =
  t.obs <- obs;
  if Psched_obs.Obs.enabled obs then Psched_obs.Obs.set_clock obs (fun () -> t.clock)

let schedule t date action =
  if date < t.clock then invalid_arg "Engine.at: date in the past";
  let ev = { date; seq = t.next_seq; action; live = true } in
  Heap.add t.queue ev;
  t.next_seq <- t.next_seq + 1;
  t.live_count <- t.live_count + 1;
  ev

let at t date action = ignore (schedule t date action)

let after t delay action =
  if delay < 0.0 then invalid_arg "Engine.after: negative delay";
  at t (t.clock +. delay) action

let cancel t ev =
  if ev.live then begin
    ev.live <- false;
    t.live_count <- t.live_count - 1
  end

let active ev = ev.live
let pending t = t.live_count

(* Smallest live event, discarding cancelled ones from the heap top. *)
let rec peek_live t =
  match Heap.min t.queue with
  | None -> None
  | Some ev when ev.live -> Some ev
  | Some _ ->
    ignore (Heap.pop t.queue);
    peek_live t

let step t =
  match peek_live t with
  | None -> false
  | Some _ ->
    let ev = Heap.pop_exn t.queue in
    ev.live <- false;
    t.live_count <- t.live_count - 1;
    t.clock <- ev.date;
    (* Event-loop hook: one branch when observability is off. *)
    if Psched_obs.Obs.enabled t.obs then
      Psched_obs.Obs.event t.obs
        ~payload:[ ("pending", Psched_obs.Event.Int t.live_count) ]
        "engine.step";
    ev.action ();
    true

let run ?until t =
  let continue () =
    match (peek_live t, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some ev, Some limit -> ev.date <= limit
  in
  while continue () do
    ignore (step t)
  done;
  (* The queue may drain (or hold only later events) before [until]:
     the clock still advances to the requested horizon. *)
  match until with Some limit when limit > t.clock -> t.clock <- limit | _ -> ()
