(** Schedules: the output of every policy in the library.

    A schedule is a set of placements (job, start date, processor
    count, cluster).  Processor identities are not tracked: on a
    homogeneous cluster a set of placements is feasible iff at every
    instant the sum of allocated processors stays within capacity
    (allocations need not be contiguous), which {!Validate} checks. *)

type entry = {
  job_id : int;
  start : float;
  duration : float;
  procs : int;
  cluster : int;  (** 0 in single-cluster settings *)
}

type t = { m : int; entries : entry list }
(** [m] is the capacity of the (single) cluster; multi-cluster
    schedules use one [t] per cluster. *)

val make : m:int -> entry list -> t

val entry :
  ?cluster:int ->
  ?speed:float ->
  job:Psched_workload.Job.t ->
  start:float ->
  procs:int ->
  unit ->
  entry
(** Placement of [job] on [procs] processors at [start]; the duration
    is the job's execution time on that allocation, divided by the
    cluster [speed] (default 1.0).
    @raise Invalid_argument if the allocation is infeasible for the job. *)

val completion : entry -> float
val makespan : t -> float

val completion_of : t -> int -> float
(** Completion date of a job id. @raise Not_found if absent. *)

val completions : t -> (int, float) Hashtbl.t
(** All completion dates keyed by job id, built in one pass.  On
    repeated ids (restart chains) the first entry wins, matching
    {!completion_of}.  Use this instead of calling {!completion_of} per
    job when touching the whole schedule. *)

val sort_by_start : t -> t

val peak_usage : t -> int
(** Maximum number of processors used simultaneously. *)

val usage_at : t -> float -> int

val total_work : t -> float
(** Sum of procs x duration over all entries. *)

val utilisation : t -> float
(** [total_work / (m * makespan)]; 0 for an empty schedule. *)

val pp : Format.formatter -> t -> unit
