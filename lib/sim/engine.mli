(** Discrete-event simulation engine.

    A minimal callback-driven engine: callbacks are scheduled at
    absolute dates and executed in date order (FIFO among equal dates).
    Callbacks may schedule further events, including at the current
    date.  Time never goes backwards. *)

type t

type handle
(** A scheduled event that can be cancelled before it fires (e.g. the
    completion of a job that an outage kills first).  Cancellation is
    O(1): the event is marked dead and discarded lazily when it
    reaches the head of the queue. *)

val create : ?obs:Psched_obs.Obs.t -> ?now:float -> unit -> t
(** With an enabled [obs], the engine installs its clock into the
    handle (events stamp simulation time) and emits one
    ["engine.step"] event per executed event — the event-loop hook of
    the observability layer.  Default: {!Psched_obs.Obs.null}, costing
    one branch per step. *)

val now : t -> float

val obs : t -> Psched_obs.Obs.t

val set_obs : t -> Psched_obs.Obs.t -> unit
(** Attach an observability handle after creation (also installs the
    engine clock into it). *)

val at : t -> float -> (unit -> unit) -> unit
(** Schedule a callback at an absolute date.
    @raise Invalid_argument if the date is in the past. *)

val after : t -> float -> (unit -> unit) -> unit
(** Schedule a callback [delay] seconds from now (delay >= 0). *)

val schedule : t -> float -> (unit -> unit) -> handle
(** Like {!at} but returns a handle for {!cancel}. *)

val cancel : t -> handle -> unit
(** Prevent a scheduled event from firing.  Idempotent; a no-op if the
    event already fired. *)

val active : handle -> bool
(** The event has neither fired nor been cancelled. *)

val pending : t -> int
(** Number of live (non-cancelled) events not yet executed. *)

val run : ?until:float -> t -> unit
(** Execute events in order until the queue is empty or the next event
    is strictly later than [until].  The clock ends at the date of the
    last executed event, or exactly at [until] when given — including
    when the queue drains early, so [run ~until] always advances the
    clock to the horizon. *)

val step : t -> bool
(** Execute the single next live event; [false] if none is pending. *)
