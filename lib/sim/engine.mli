(** Discrete-event simulation engine.

    A minimal callback-driven engine: callbacks are scheduled at
    absolute dates and executed in date order (FIFO among equal dates).
    Callbacks may schedule further events, including at the current
    date.  Time never goes backwards. *)

type t

val create : ?now:float -> unit -> t
val now : t -> float

val at : t -> float -> (unit -> unit) -> unit
(** Schedule a callback at an absolute date.
    @raise Invalid_argument if the date is in the past. *)

val after : t -> float -> (unit -> unit) -> unit
(** Schedule a callback [delay] seconds from now (delay >= 0). *)

val pending : t -> int
(** Number of events not yet executed. *)

val run : ?until:float -> t -> unit
(** Execute events in order until the queue is empty or the next event
    is strictly later than [until].  The clock ends at the date of the
    last executed event (or [until] if given and reached). *)

val step : t -> bool
(** Execute the single next event; [false] if the queue was empty. *)
