(** Replay a planned schedule on the discrete-event engine.

    Bridges planning and execution: each placement becomes a start and
    a completion event; hooks observe the execution (logging,
    middleware simulation, live metrics).  The executor re-checks
    capacity as it runs, so a corrupt plan fails loudly at simulated
    time rather than producing a silent overload. *)

type event = Started of Schedule.entry | Completed of Schedule.entry

val pp_event : Format.formatter -> event -> unit

val run :
  ?on_event:(float -> event -> unit) ->
  ?until:float ->
  Schedule.t ->
  (float * event) list
(** Execute the schedule; returns the chronological event log (also
    fed to [on_event] as the clock advances).  [until] truncates the
    replay.
    @raise Failure if the plan overloads the cluster at some event. *)

val utilisation_trace : Schedule.t -> (float * int) list
(** Processors in use as a step function of time (breakpoints at
    every start/completion), derived by replay. *)
