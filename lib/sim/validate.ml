open Psched_workload

type violation =
  | Missing_job of int
  | Duplicate_job of int
  | Unknown_job of int
  | Bad_allocation of int
  | Bad_duration of int
  | Before_release of int
  | Over_capacity of { date : float; used : int; capacity : int; job_ids : int list }
  | Over_resource of { resource : string; date : float; used : int; capacity : int }

let pp_violation ppf = function
  | Missing_job id -> Format.fprintf ppf "job %d is not scheduled" id
  | Duplicate_job id -> Format.fprintf ppf "job %d is scheduled more than once" id
  | Unknown_job id -> Format.fprintf ppf "schedule contains unknown job %d" id
  | Bad_allocation id -> Format.fprintf ppf "job %d has an infeasible allocation" id
  | Bad_duration id -> Format.fprintf ppf "job %d has a wrong duration" id
  | Before_release id -> Format.fprintf ppf "job %d starts before its release date" id
  | Over_capacity { date; used; capacity; job_ids } ->
    Format.fprintf ppf "capacity exceeded at t=%g: %d > %d (overshoot %d; jobs%a)" date used
      capacity (used - capacity)
      (fun ppf ids -> List.iter (fun id -> Format.fprintf ppf " %d" id) ids)
      job_ids
  | Over_resource { resource; date; used; capacity } ->
    Format.fprintf ppf "%s capacity exceeded at t=%g: %d > %d (overshoot %d)" resource date used
      capacity (used - capacity)

let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check ?(speed = 1.0) ?(reservations = []) ?cap ~jobs sched =
  let open Schedule in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let job_tbl = Hashtbl.create 64 in
  List.iter (fun (j : Job.t) -> Hashtbl.replace job_tbl j.id j) jobs;
  let seen = Hashtbl.create 64 in
  let check_entry (e : entry) =
    if Hashtbl.mem seen e.job_id then add (Duplicate_job e.job_id)
    else begin
      Hashtbl.replace seen e.job_id ();
      match Hashtbl.find_opt job_tbl e.job_id with
      | None -> add (Unknown_job e.job_id)
      | Some job ->
        if not (Job.can_run_on job e.procs) then add (Bad_allocation e.job_id)
        else if not (close e.duration (Job.time_on job e.procs /. speed)) then
          add (Bad_duration e.job_id)
        else if e.start < job.release -. 1e-9 then add (Before_release e.job_id)
    end
  in
  List.iter check_entry sched.entries;
  List.iter
    (fun (j : Job.t) -> if not (Hashtbl.mem seen j.id) then add (Missing_job j.id))
    jobs;
  (* Capacity: build the exact usage step timeline with the profile
     engine (one sweep over the demand intervals), counting
     reservations as extra demand, and flag every maximal segment above
     capacity.  Slivers no longer than [eps] are tolerated, as the
     previous epsilon-shifted sampling did for back-to-back placements
     where one job ends within rounding of the next one's start. *)
  let eps = 1e-9 in
  let demands =
    List.map (fun (e : entry) -> (e.start, completion e, e.procs)) sched.entries
    @ List.map
        (fun (r : Psched_platform.Reservation.t) ->
          (r.start, Psched_platform.Reservation.finish r, r.procs))
        reservations
  in
  let jobs_active date stop =
    List.filter_map
      (fun (e : entry) ->
        if e.start < stop -. eps && completion e > date +. eps then Some e.job_id else None)
      sched.entries
    |> List.sort_uniq compare
  in
  let rec flag = function
    | [] -> ()
    | (date, used) :: rest ->
      let next = match rest with (d, _) :: _ -> d | [] -> infinity in
      if used > sched.m && next -. date > eps then
        add
          (Over_capacity
             { date; used; capacity = sched.m; job_ids = jobs_active date next });
      flag rest
  in
  flag (Profile.usage_timeline demands);
  (* Multi-resource capacity: each bounded non-core component gets its
     own usage timeline, built from the entries' request vectors (the
     job's stored demand at the entry's allocation).  Unbounded
     components are not modelled and skipped. *)
  (match cap with
  | None -> ()
  | Some (cap : Psched_platform.Resource.t) ->
    let amount_of (e : entry) pick =
      match Hashtbl.find_opt job_tbl e.job_id with
      | Some job -> pick (Job.request job ~procs:e.procs)
      | None -> 0
    in
    let sweep ~resource ~capacity pick =
      if not (Psched_platform.Resource.is_unbounded capacity) then begin
        let demands =
          List.filter_map
            (fun (e : entry) ->
              let a = amount_of e pick in
              if a > 0 then Some (e.start, completion e, a) else None)
            sched.entries
        in
        let rec flag = function
          | [] -> ()
          | (date, used) :: rest ->
            let next = match rest with (d, _) :: _ -> d | [] -> infinity in
            if used > capacity && next -. date > eps then
              add (Over_resource { resource; date; used; capacity });
            flag rest
        in
        flag (Profile.usage_timeline demands)
      end
    in
    sweep ~resource:"memory" ~capacity:cap.Psched_platform.Resource.memory (fun r ->
        r.Psched_platform.Resource.memory);
    sweep ~resource:"bandwidth" ~capacity:cap.Psched_platform.Resource.bandwidth (fun r ->
        r.Psched_platform.Resource.bandwidth));
  List.rev !violations

let is_valid ?speed ?reservations ?cap ~jobs sched =
  check ?speed ?reservations ?cap ~jobs sched = []

let check_exn ?speed ?reservations ?cap ~jobs sched =
  match check ?speed ?reservations ?cap ~jobs sched with
  | [] -> ()
  | vs ->
    let msg =
      Format.asprintf "invalid schedule:@ %a"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_violation)
        vs
    in
    failwith msg
