open Psched_workload

type violation =
  | Missing_job of int
  | Duplicate_job of int
  | Unknown_job of int
  | Bad_allocation of int
  | Bad_duration of int
  | Before_release of int
  | Over_capacity of { date : float; used : int; capacity : int; job_ids : int list }

let pp_violation ppf = function
  | Missing_job id -> Format.fprintf ppf "job %d is not scheduled" id
  | Duplicate_job id -> Format.fprintf ppf "job %d is scheduled more than once" id
  | Unknown_job id -> Format.fprintf ppf "schedule contains unknown job %d" id
  | Bad_allocation id -> Format.fprintf ppf "job %d has an infeasible allocation" id
  | Bad_duration id -> Format.fprintf ppf "job %d has a wrong duration" id
  | Before_release id -> Format.fprintf ppf "job %d starts before its release date" id
  | Over_capacity { date; used; capacity; job_ids } ->
    Format.fprintf ppf "capacity exceeded at t=%g: %d > %d (overshoot %d; jobs%a)" date used
      capacity (used - capacity)
      (fun ppf ids -> List.iter (fun id -> Format.fprintf ppf " %d" id) ids)
      job_ids

let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check ?(speed = 1.0) ?(reservations = []) ~jobs sched =
  let open Schedule in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let job_tbl = Hashtbl.create 64 in
  List.iter (fun (j : Job.t) -> Hashtbl.replace job_tbl j.id j) jobs;
  let seen = Hashtbl.create 64 in
  let check_entry (e : entry) =
    if Hashtbl.mem seen e.job_id then add (Duplicate_job e.job_id)
    else begin
      Hashtbl.replace seen e.job_id ();
      match Hashtbl.find_opt job_tbl e.job_id with
      | None -> add (Unknown_job e.job_id)
      | Some job ->
        if not (Job.can_run_on job e.procs) then add (Bad_allocation e.job_id)
        else if not (close e.duration (Job.time_on job e.procs /. speed)) then
          add (Bad_duration e.job_id)
        else if e.start < job.release -. 1e-9 then add (Before_release e.job_id)
    end
  in
  List.iter check_entry sched.entries;
  List.iter
    (fun (j : Job.t) -> if not (Hashtbl.mem seen j.id) then add (Missing_job j.id))
    jobs;
  (* Capacity: build the exact usage step timeline with the profile
     engine (one sweep over the demand intervals), counting
     reservations as extra demand, and flag every maximal segment above
     capacity.  Slivers no longer than [eps] are tolerated, as the
     previous epsilon-shifted sampling did for back-to-back placements
     where one job ends within rounding of the next one's start. *)
  let eps = 1e-9 in
  let demands =
    List.map (fun (e : entry) -> (e.start, completion e, e.procs)) sched.entries
    @ List.map
        (fun (r : Psched_platform.Reservation.t) ->
          (r.start, Psched_platform.Reservation.finish r, r.procs))
        reservations
  in
  let jobs_active date stop =
    List.filter_map
      (fun (e : entry) ->
        if e.start < stop -. eps && completion e > date +. eps then Some e.job_id else None)
      sched.entries
    |> List.sort_uniq compare
  in
  let rec flag = function
    | [] -> ()
    | (date, used) :: rest ->
      let next = match rest with (d, _) :: _ -> d | [] -> infinity in
      if used > sched.m && next -. date > eps then
        add
          (Over_capacity
             { date; used; capacity = sched.m; job_ids = jobs_active date next });
      flag rest
  in
  flag (Profile.usage_timeline demands);
  List.rev !violations

let is_valid ?speed ?reservations ~jobs sched = check ?speed ?reservations ~jobs sched = []

let check_exn ?speed ?reservations ~jobs sched =
  match check ?speed ?reservations ~jobs sched with
  | [] -> ()
  | vs ->
    let msg =
      Format.asprintf "invalid schedule:@ %a"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_violation)
        vs
    in
    failwith msg
