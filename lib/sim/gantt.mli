(** ASCII Gantt charts.

    Renders a schedule as rows of processors against time, one
    character column per time step.  Since schedules do not pin jobs to
    processor identities, the renderer assigns rows greedily (first
    free row block), which always succeeds within capacity for
    visualisation purposes; if a job cannot be drawn contiguously it is
    split across free rows. *)

type mark = Shed | Killed | Clipped
(** Job fates worth flagging on a rendered trace: shed before
    placement, killed by an outage, or overlapping an outage window. *)

val render : ?width:int -> ?max_rows:int -> ?marks:(int * mark) list -> Schedule.t -> string
(** [render sched] draws at most [max_rows] processor rows (default 32,
    capped at the cluster size) over [width] columns (default 72).
    Jobs are labelled with the last character of their id (digits
    cycle); idle space is ['.'].  [marks] overrides the glyph of the
    listed jobs (['x'] killed, ['~'] outage-clipped) and appends a
    legend line naming any shed jobs, which have no bar to draw.
    Returns a printable multi-line string ending in a time axis. *)

val render_svg :
  ?width:int -> ?row_height:int -> ?marks:(int * mark) list -> Schedule.t -> string
(** [render_svg sched] is a standalone SVG document of the same
    timeline: one lane per processor ([sched.m] rows of [row_height]
    pixels), one rectangle per (entry, lane) with a hover tooltip
    giving the job id, start, duration and width.  Lane assignment is
    greedy over exact times; if the entries oversubscribe [sched.m]
    (e.g. a trace replayed with a too-small [--m]) bars double up
    instead of failing.  [marks] hatches killed bars red and washes
    out outage-clipped ones, extends their tooltips, and adds a
    legend row naming any shed jobs. *)
