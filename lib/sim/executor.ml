type event = Started of Schedule.entry | Completed of Schedule.entry

let pp_event ppf = function
  | Started e -> Format.fprintf ppf "start job#%d x%d" e.Schedule.job_id e.Schedule.procs
  | Completed e -> Format.fprintf ppf "end job#%d" e.Schedule.job_id

let run ?(on_event = fun _ _ -> ()) ?until (sched : Schedule.t) =
  let engine = Engine.create () in
  let log = ref [] in
  let in_use = ref 0 in
  let emit ev =
    let now = Engine.now engine in
    (match ev with
    | Started e ->
      in_use := !in_use + e.Schedule.procs;
      if !in_use > sched.Schedule.m then
        failwith
          (Printf.sprintf "Executor.run: %d processors in use at t=%g on a %d-cluster" !in_use
             now sched.Schedule.m)
    | Completed e -> in_use := !in_use - e.Schedule.procs);
    log := (now, ev) :: !log;
    on_event now ev
  in
  List.iter
    (fun (e : Schedule.entry) ->
      (* Completions are scheduled before starts at equal dates (FIFO
         among equal dates follows insertion order), so back-to-back
         placements hand processors over correctly. *)
      Engine.at engine (Schedule.completion e) (fun () -> emit (Completed e)))
    sched.Schedule.entries;
  List.iter
    (fun (e : Schedule.entry) -> Engine.at engine e.Schedule.start (fun () -> emit (Started e)))
    sched.Schedule.entries;
  Engine.run ?until engine;
  List.rev !log

let utilisation_trace sched =
  let trace = ref [] in
  let usage = ref 0 in
  let record now delta =
    usage := !usage + delta;
    match !trace with
    | (t, _) :: rest when t = now -> trace := (now, !usage) :: rest
    | _ -> trace := (now, !usage) :: !trace
  in
  ignore
    (run
       ~on_event:(fun now ev ->
         match ev with
         | Started e -> record now e.Schedule.procs
         | Completed e -> record now (-e.Schedule.procs))
       sched);
  List.rev !trace
