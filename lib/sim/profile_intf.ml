(** The contract every availability-profile engine implements.

    {!Profile} (indexed step timeline) is the production engine;
    {!Profile_reference} (sorted assoc list, the original
    implementation) is kept as the oracle of the property tests and as
    the baseline of the [bench/main.exe perf] comparison.  Schedulers
    that want to be engine-generic (e.g. [Backfilling.Make],
    [Mrt.Make]) take any [S]. *)

module type S = sig
  type t

  val create : int -> t
  val capacity : t -> int
  val free_at : t -> float -> int
  val find_start : t -> earliest:float -> duration:float -> procs:int -> float
  val reserve : t -> start:float -> duration:float -> procs:int -> unit
  val release : t -> start:float -> duration:float -> procs:int -> unit
  val release_window : t -> start:float -> stop:float -> procs:int -> unit
  val place : t -> earliest:float -> duration:float -> procs:int -> float
  val breakpoints : t -> (float * int) list
  val holes : t -> until:float -> (float * float * int) list
  val copy : t -> t
  val pp : Format.formatter -> t -> unit
end
