(** The original assoc-list availability profile, kept as an
    executable specification of {!Profile}: the property tests check
    that both engines produce identical observations on random
    operation sequences, and [bench/main.exe perf] measures the
    indexed engine's speedup against this baseline.  Same contract as
    {!Profile_intf.S}; see {!Profile} for the semantics. *)

include Profile_intf.S
