(* The original assoc-list availability profile, kept as an executable
   specification: the property tests drive it in lockstep with the
   indexed {!Profile} engine and require identical observations, and
   the benchmark harness uses it as the baseline of the speedup
   figures.  The list is rebuilt wholesale on every update and
   re-scanned per candidate start, which is exactly the O(k^2)
   behaviour the indexed engine replaces. *)

type t = { capacity : int; mutable steps : (float * int) list }
(* [steps] is sorted by strictly increasing date; the first date is 0;
   each pair (s, f) means f processors are free on [s, next date). *)

let create m =
  if m < 1 then invalid_arg "Profile.create: capacity must be >= 1";
  { capacity = m; steps = [ (0.0, m) ] }

let capacity t = t.capacity
let copy t = { t with steps = t.steps }

let free_at t date =
  let rec loop last = function
    | (s, f) :: rest when s <= date -> loop f rest
    | _ -> last
  in
  match t.steps with
  | (_, f0) :: rest -> loop f0 rest
  | [] -> assert false

let breakpoints t = t.steps

(* Rewrite the step list applying [delta] on [start, stop). *)
let update t ~start ~stop ~delta =
  assert (start < stop);
  let out = ref [] in
  let emit s f = out := (s, f) :: !out in
  let rec loop = function
    | [] -> ()
    | (s, f) :: rest ->
      let next = match rest with (s', _) :: _ -> s' | [] -> infinity in
      (* Segment [s, next) at level f; intersect with [start, stop). *)
      let a = Float.max s start and b = Float.min next stop in
      if a < b then begin
        if s < a then emit s f;
        emit a (f + delta);
        if b < next then emit b f
      end
      else emit s f;
      loop rest
  in
  loop t.steps;
  let steps = List.rev !out in
  List.iter
    (fun (_, f) ->
      if f < 0 then invalid_arg "Profile: availability would become negative";
      if f > t.capacity then invalid_arg "Profile: availability would exceed capacity")
    steps;
  (* Merge equal neighbours to keep the list small. *)
  let rec merge = function
    | (s1, f1) :: (_, f2) :: rest when f1 = f2 -> merge ((s1, f1) :: rest)
    | p :: rest -> p :: merge rest
    | [] -> []
  in
  t.steps <- merge steps

let reserve t ~start ~duration ~procs =
  if duration <= 0.0 then invalid_arg "Profile.reserve: duration must be positive";
  if procs < 0 then invalid_arg "Profile.reserve: negative procs";
  if procs > 0 then update t ~start ~stop:(start +. duration) ~delta:(-procs)

let release t ~start ~duration ~procs =
  if duration <= 0.0 then invalid_arg "Profile.release: duration must be positive";
  if procs < 0 then invalid_arg "Profile.release: negative procs";
  if procs > 0 then update t ~start ~stop:(start +. duration) ~delta:procs

let release_window t ~start ~stop ~procs =
  if stop <= start then invalid_arg "Profile.release_window: empty window";
  if procs < 0 then invalid_arg "Profile.release_window: negative procs";
  if procs > 0 then update t ~start ~stop ~delta:procs

(* Does the window [s, s + duration) have >= procs free everywhere? *)
let window_ok t ~s ~duration ~procs =
  let stop = s +. duration in
  let rec loop = function
    | [] -> true
    | (seg_s, f) :: rest ->
      let next = match rest with (s', _) :: _ -> s' | [] -> infinity in
      let overlaps =
        if duration <= 0.0 then seg_s <= s && s < next else seg_s < stop && next > s
      in
      if overlaps && f < procs then false else loop rest
  in
  loop t.steps

let find_start t ~earliest ~duration ~procs =
  if procs > t.capacity then raise Not_found;
  let earliest = Float.max earliest 0.0 in
  (* The earliest feasible start is [earliest] itself or the end of an
     insufficient segment, i.e. a breakpoint: checking those suffices. *)
  let candidates =
    earliest :: List.filter_map (fun (s, _) -> if s > earliest then Some s else None) t.steps
  in
  match List.find_opt (fun s -> window_ok t ~s ~duration ~procs) candidates with
  | Some s -> s
  | None -> raise Not_found

let place t ~earliest ~duration ~procs =
  let start = find_start t ~earliest ~duration ~procs in
  if duration > 0.0 then reserve t ~start ~duration ~procs;
  start

let holes t ~until =
  let rec loop acc = function
    | [] -> List.rev acc
    | (s, f) :: rest ->
      let next = match rest with (s', _) :: _ -> s' | [] -> infinity in
      let stop = Float.min next until in
      let acc = if f > 0 && s < stop then (s, stop, f) :: acc else acc in
      if next >= until then List.rev acc else loop acc rest
  in
  loop [] t.steps

let pp ppf t =
  let pp_step ppf (s, f) = Format.fprintf ppf "%g->%d" s f in
  Format.fprintf ppf "@[<h>[%a]@]" (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_step)
    t.steps
