open Psched_workload

type t = {
  makespan : float;
  sum_completion : float;
  sum_weighted_completion : float;
  mean_flow : float;
  max_flow : float;
  mean_stretch : float;
  max_stretch : float;
  tardy_count : int;
  sum_tardiness : float;
  max_tardiness : float;
  utilisation : float;
  throughput : float;
}

let compute ~jobs sched =
  (* One hash lookup per job instead of one schedule scan per job: the
     former [completion_of] loop was the O(n^2) hot spot of every
     sweep. *)
  let tbl = Schedule.completions sched in
  let completions =
    List.filter_map
      (fun (j : Job.t) ->
        match Hashtbl.find_opt tbl j.id with
        | Some c -> Some (j, c)
        | None -> None)
      jobs
  in
  let n = List.length completions in
  let nf = float_of_int n in
  let fold f init = List.fold_left f init completions in
  let makespan = fold (fun acc (_, c) -> Float.max acc c) 0.0 in
  let sum_completion = fold (fun acc (_, c) -> acc +. c) 0.0 in
  let sum_weighted_completion = fold (fun acc (j, c) -> acc +. (j.Job.weight *. c)) 0.0 in
  let flows = List.map (fun ((j : Job.t), c) -> c -. j.release) completions in
  let stretches =
    List.map (fun ((j : Job.t), c) -> (c -. j.release) /. Float.max (Job.min_time j) 1e-12)
      completions
  in
  let tardiness =
    List.filter_map
      (fun ((j : Job.t), c) ->
        match j.due with Some d -> Some (Float.max 0.0 (c -. d)) | None -> None)
      completions
  in
  {
    makespan;
    sum_completion;
    sum_weighted_completion;
    mean_flow = (if n = 0 then 0.0 else Psched_util.Stats.sum flows /. nf);
    max_flow = Psched_util.Stats.max_l flows;
    mean_stretch = (if n = 0 then 0.0 else Psched_util.Stats.sum stretches /. nf);
    max_stretch = Psched_util.Stats.max_l stretches;
    tardy_count = List.length (List.filter (fun t -> t > 0.0) tardiness);
    sum_tardiness = Psched_util.Stats.sum tardiness;
    max_tardiness = Psched_util.Stats.max_l tardiness;
    utilisation = Schedule.utilisation sched;
    throughput = (if makespan <= 0.0 then 0.0 else nf /. makespan);
  }

module Acc = struct
  type metrics = t

  type t = {
    m : int;
    mutable n : int;
    mutable makespan : float;
    mutable sum_completion : float;
    mutable sum_weighted_completion : float;
    mutable sum_flow : float;
    mutable max_flow : float;
    mutable sum_stretch : float;
    mutable max_stretch : float;
    mutable tardy_count : int;
    mutable sum_tardiness : float;
    mutable max_tardiness : float;
    mutable work : float;
  }

  let create ~m =
    if m < 1 then invalid_arg "Metrics.Acc.create: capacity must be >= 1";
    {
      m;
      n = 0;
      makespan = 0.0;
      sum_completion = 0.0;
      sum_weighted_completion = 0.0;
      sum_flow = 0.0;
      max_flow = 0.0;
      sum_stretch = 0.0;
      max_stretch = 0.0;
      tardy_count = 0;
      sum_tardiness = 0.0;
      max_tardiness = 0.0;
      work = 0.0;
    }

  let add acc ~(job : Job.t) ~start ~procs ~duration =
    let c = start +. duration in
    let flow = c -. job.release in
    let stretch = flow /. Float.max (Job.min_time job) 1e-12 in
    acc.n <- acc.n + 1;
    acc.makespan <- Float.max acc.makespan c;
    acc.sum_completion <- acc.sum_completion +. c;
    acc.sum_weighted_completion <- acc.sum_weighted_completion +. (job.weight *. c);
    acc.sum_flow <- acc.sum_flow +. flow;
    acc.max_flow <- Float.max acc.max_flow flow;
    acc.sum_stretch <- acc.sum_stretch +. stretch;
    acc.max_stretch <- Float.max acc.max_stretch stretch;
    (match job.due with
    | Some d ->
      let tard = Float.max 0.0 (c -. d) in
      if tard > 0.0 then acc.tardy_count <- acc.tardy_count + 1;
      acc.sum_tardiness <- acc.sum_tardiness +. tard;
      acc.max_tardiness <- Float.max acc.max_tardiness tard
    | None -> ());
    acc.work <- acc.work +. (float_of_int procs *. duration)

  let jobs_seen acc = acc.n

  (* The accumulator's whole state is twelve scalars; exposing them as
     a record lets a long-running daemon snapshot its metrics and
     rebuild the exact accumulator after a crash (see lib/serve).
     [import (export acc)] is bit-identical to [acc]: every field is
     copied verbatim, no recomputation happens. *)
  type state = {
    s_m : int;
    s_n : int;
    s_makespan : float;
    s_sum_completion : float;
    s_sum_weighted_completion : float;
    s_sum_flow : float;
    s_max_flow : float;
    s_sum_stretch : float;
    s_max_stretch : float;
    s_tardy_count : int;
    s_sum_tardiness : float;
    s_max_tardiness : float;
    s_work : float;
  }

  let export acc =
    {
      s_m = acc.m;
      s_n = acc.n;
      s_makespan = acc.makespan;
      s_sum_completion = acc.sum_completion;
      s_sum_weighted_completion = acc.sum_weighted_completion;
      s_sum_flow = acc.sum_flow;
      s_max_flow = acc.max_flow;
      s_sum_stretch = acc.sum_stretch;
      s_max_stretch = acc.max_stretch;
      s_tardy_count = acc.tardy_count;
      s_sum_tardiness = acc.sum_tardiness;
      s_max_tardiness = acc.max_tardiness;
      s_work = acc.work;
    }

  let import s =
    if s.s_m < 1 then invalid_arg "Metrics.Acc.import: capacity must be >= 1";
    {
      m = s.s_m;
      n = s.s_n;
      makespan = s.s_makespan;
      sum_completion = s.s_sum_completion;
      sum_weighted_completion = s.s_sum_weighted_completion;
      sum_flow = s.s_sum_flow;
      max_flow = s.s_max_flow;
      sum_stretch = s.s_sum_stretch;
      max_stretch = s.s_max_stretch;
      tardy_count = s.s_tardy_count;
      sum_tardiness = s.s_sum_tardiness;
      max_tardiness = s.s_max_tardiness;
      work = s.s_work;
    }

  let result acc : metrics =
    let nf = float_of_int acc.n in
    {
      makespan = acc.makespan;
      sum_completion = acc.sum_completion;
      sum_weighted_completion = acc.sum_weighted_completion;
      mean_flow = (if acc.n = 0 then 0.0 else acc.sum_flow /. nf);
      max_flow = acc.max_flow;
      mean_stretch = (if acc.n = 0 then 0.0 else acc.sum_stretch /. nf);
      max_stretch = acc.max_stretch;
      tardy_count = acc.tardy_count;
      sum_tardiness = acc.sum_tardiness;
      max_tardiness = acc.max_tardiness;
      utilisation =
        (if acc.makespan <= 0.0 then 0.0
         else acc.work /. (float_of_int acc.m *. acc.makespan));
      throughput = (if acc.makespan <= 0.0 then 0.0 else nf /. acc.makespan);
    }
end

let makespan_ratio ~lower_bound sched =
  let c = Schedule.makespan sched in
  if lower_bound > 0.0 then c /. lower_bound else if c <= 0.0 then 1.0 else infinity

let pp ppf t =
  Format.fprintf ppf
    "Cmax=%.4g sumC=%.4g sumWC=%.4g flow(mean/max)=%.4g/%.4g stretch(mean/max)=%.4g/%.4g \
     tardy=%d util=%.3f thpt=%.4g"
    t.makespan t.sum_completion t.sum_weighted_completion t.mean_flow t.max_flow t.mean_stretch
    t.max_stretch t.tardy_count t.utilisation t.throughput
