open Psched_workload

type t = {
  makespan : float;
  sum_completion : float;
  sum_weighted_completion : float;
  mean_flow : float;
  max_flow : float;
  mean_stretch : float;
  max_stretch : float;
  tardy_count : int;
  sum_tardiness : float;
  max_tardiness : float;
  utilisation : float;
  throughput : float;
}

let compute ~jobs sched =
  let completions =
    List.filter_map
      (fun (j : Job.t) ->
        match Schedule.completion_of sched j.id with
        | c -> Some (j, c)
        | exception Not_found -> None)
      jobs
  in
  let n = List.length completions in
  let nf = float_of_int n in
  let fold f init = List.fold_left f init completions in
  let makespan = fold (fun acc (_, c) -> Float.max acc c) 0.0 in
  let sum_completion = fold (fun acc (_, c) -> acc +. c) 0.0 in
  let sum_weighted_completion = fold (fun acc (j, c) -> acc +. (j.Job.weight *. c)) 0.0 in
  let flows = List.map (fun ((j : Job.t), c) -> c -. j.release) completions in
  let stretches =
    List.map (fun ((j : Job.t), c) -> (c -. j.release) /. Float.max (Job.min_time j) 1e-12)
      completions
  in
  let tardiness =
    List.filter_map
      (fun ((j : Job.t), c) ->
        match j.due with Some d -> Some (Float.max 0.0 (c -. d)) | None -> None)
      completions
  in
  {
    makespan;
    sum_completion;
    sum_weighted_completion;
    mean_flow = (if n = 0 then 0.0 else Psched_util.Stats.sum flows /. nf);
    max_flow = Psched_util.Stats.max_l flows;
    mean_stretch = (if n = 0 then 0.0 else Psched_util.Stats.sum stretches /. nf);
    max_stretch = Psched_util.Stats.max_l stretches;
    tardy_count = List.length (List.filter (fun t -> t > 0.0) tardiness);
    sum_tardiness = Psched_util.Stats.sum tardiness;
    max_tardiness = Psched_util.Stats.max_l tardiness;
    utilisation = Schedule.utilisation sched;
    throughput = (if makespan <= 0.0 then 0.0 else nf /. makespan);
  }

let makespan_ratio ~lower_bound sched =
  let c = Schedule.makespan sched in
  if lower_bound > 0.0 then c /. lower_bound else if c <= 0.0 then 1.0 else infinity

let pp ppf t =
  Format.fprintf ppf
    "Cmax=%.4g sumC=%.4g sumWC=%.4g flow(mean/max)=%.4g/%.4g stretch(mean/max)=%.4g/%.4g \
     tardy=%d util=%.3f thpt=%.4g"
    t.makespan t.sum_completion t.sum_weighted_completion t.mean_flow t.max_flow t.mean_stretch
    t.max_stretch t.tardy_count t.utilisation t.throughput
