(** Availability profile: free processors of a cluster as a step
    function of time.

    This is the planning structure behind every list/backfilling
    scheduler in the library: it answers "when is the earliest date at
    which [k] processors are simultaneously free for [d] seconds?" and
    records placements.  The function is piecewise constant with
    finitely many breakpoints and extends with its last value to
    +infinity.

    Implementation: an indexed step timeline (growable sorted arrays
    with binary-searched lookup, in-place window deltas, sweep-line
    search).  {!Profile_reference} keeps the original assoc-list
    implementation as the oracle of the property tests. *)

type t

val create : int -> t
(** [create m]: [m] processors free from time 0 on. *)

val capacity : t -> int

val origin : t -> float
(** Left edge of the live timeline: 0 at creation, advanced by
    {!compact}.  Queries and windows before the origin clamp to it. *)

val free_at : t -> float -> int
(** Free processors at instant [t] (intervals are half-open [\[s, e)]). *)

val find_start : t -> earliest:float -> duration:float -> procs:int -> float
(** Earliest start [s >= earliest] such that at least [procs]
    processors are free during the whole of [\[s, s + duration)].
    Always exists since the profile is eventually constant with at
    least the final free count; @raise Not_found if even the final
    plateau has fewer than [procs] free. *)

val reserve : t -> start:float -> duration:float -> procs:int -> unit
(** Subtract [procs] from the window.
    @raise Invalid_argument if it would drive availability negative. *)

val release : t -> start:float -> duration:float -> procs:int -> unit
(** Add [procs] back on the window (used to undo placements and to
    model reservation expiry).  Availability may not exceed capacity.
    @raise Invalid_argument on overflow. *)

val release_window : t -> start:float -> stop:float -> procs:int -> unit
(** Like {!release} but with an exact right endpoint: use this to give
    back the tail of an earlier reservation, where recomputing the
    endpoint as [start + duration] could overshoot it by one ulp. *)

val place : t -> earliest:float -> duration:float -> procs:int -> float
(** [find_start] then [reserve]; returns the start date. *)

val breakpoints : t -> (float * int) list
(** The step function as (date, free-from-that-date) pairs, strictly
    increasing dates, first at the {!origin}. *)

val compact : t -> before:float -> int
(** [compact t ~before] folds the timeline left of [before] into the
    aggregate {!stats} scalars ([folded_busy] proc-seconds,
    [folded_span], [folded_segments]) and drops those segments,
    advancing the {!origin} to [before].  Returns the number of
    segments dropped; a no-op returning 0 when [before <= origin t].

    Sound once a simulation clock has passed [before]: every later
    window and query clamps to the origin, so all observable behaviour
    at dates [>= before] is identical to the uncompacted profile (the
    property tests assert this against {!Profile_reference}).  Live
    memory becomes O(live horizon) instead of O(total jobs placed).
    @raise Invalid_argument if [before] is not finite. *)

val holes : t -> until:float -> (float * float * int) list
(** Maximal constant segments [(start, stop, free)] with [free > 0]
    before [until] — the Gantt-chart holes the best-effort layer fills. *)

val copy : t -> t
(** Independent deep copy: mutating the copy never affects the
    original (the backing arrays are duplicated, not shared). *)

val events : t -> (float * int) list
(** The step function as signed jumps: [(date, delta_free)] per
    breakpoint, the first relative to the implicit full-capacity level
    before time 0.  Summing prefixes of [events] recovers
    {!breakpoints}; the encoding suits observability exports. *)

type stats = {
  segments : int;  (** current number of breakpoints *)
  peak_segments : int;  (** high-water mark since creation *)
  reserves : int;  (** {!reserve} calls *)
  releases : int;  (** {!release} / {!release_window} calls *)
  searches : int;  (** {!find_start} calls (incl. via {!place}) *)
  compactions : int;  (** effective {!compact} calls *)
  folded_segments : int;  (** segments dropped by compaction *)
  folded_busy : float;  (** proc-seconds folded away (busy time) *)
  folded_span : float;  (** seconds of timeline folded away *)
}

val stats : t -> stats
(** Observability counters for scheduler instrumentation. *)

val usage_timeline : (float * float * int) list -> (float * int) list
(** [usage_timeline demands]: the total demand of [(start, stop,
    procs)] intervals as a step function [(date, used)] — one sweep of
    the timeline engine.  Used by {!Validate} for capacity checking. *)

val pp : Format.formatter -> t -> unit
