(* Multi-resource availability profile: the indexed step timeline of
   {!Profile}, generalised from a scalar free-processor count to a
   small fixed {!Psched_platform.Resource.t} vector per segment.

   Segment [i] spans [dates.(i), dates.(i+1)) (the last segment extends
   to +infinity) with [cores.(i)]/[mem.(i)]/[bw.(i)] free.  Invariants
   mirror {!Profile}: strictly increasing dates, every component within
   [0, capacity], adjacent segments differing in at least one
   component (always merged otherwise).

   The algorithms are a deliberate line-for-line port of {!Profile}
   (binary-searched lookups, windowed updates touching only overlapping
   segments, a single anchored sweep for [find_start]) so that with an
   unbounded capacity vector and zero non-core requests every query
   returns bit-identical dates to the scalar engine — the degenerate
   compatibility contract, property-tested against {!Profile} in the
   QCheck suite.  The scalar engine stays separate: its hot path
   carries one int array, not three, and the streaming engine and the
   serve daemon keep running on it unchanged. *)

module R = Psched_platform.Resource

type t = {
  capacity : R.t;
  mutable dates : float array;
  mutable cores : int array;
  mutable mem : int array;
  mutable bw : int array;
  mutable len : int;
  mutable peak : int;
  mutable n_reserve : int;
  mutable n_release : int;
  mutable n_search : int;
}

type stats = { segments : int; peak_segments : int; reserves : int; releases : int; searches : int }

let create (capacity : R.t) =
  if capacity.R.cores < 1 then invalid_arg "Rprofile.create: capacity must have >= 1 core";
  {
    capacity;
    dates = Array.make 8 0.0;
    cores = Array.make 8 capacity.R.cores;
    mem = Array.make 8 capacity.R.memory;
    bw = Array.make 8 capacity.R.bandwidth;
    len = 1;
    peak = 1;
    n_reserve = 0;
    n_release = 0;
    n_search = 0;
  }

let capacity t = t.capacity

let copy t =
  {
    t with
    dates = Array.copy t.dates;
    cores = Array.copy t.cores;
    mem = Array.copy t.mem;
    bw = Array.copy t.bw;
  }

let stats t =
  {
    segments = t.len;
    peak_segments = t.peak;
    reserves = t.n_reserve;
    releases = t.n_release;
    searches = t.n_search;
  }

let free_of t i = R.make ~cores:t.cores.(i) ~memory:t.mem.(i) ~bandwidth:t.bw.(i) ()

(* Greatest i with dates.(i) <= date, clamped to 0. *)
let seg_index t date =
  if date <= t.dates.(0) then 0
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.dates.(mid) <= date then lo := mid else hi := mid - 1
    done;
    !lo
  end

let free_at t date = free_of t (seg_index t date)
let breakpoints t = List.init t.len (fun i -> (t.dates.(i), free_of t i))

let grow t extra =
  let need = t.len + extra in
  let cap = Array.length t.dates in
  if need > cap then begin
    let cap' = max need (2 * cap) in
    let dates = Array.make cap' 0.0 in
    let cores = Array.make cap' 0 and mem = Array.make cap' 0 and bw = Array.make cap' 0 in
    Array.blit t.dates 0 dates 0 t.len;
    Array.blit t.cores 0 cores 0 t.len;
    Array.blit t.mem 0 mem 0 t.len;
    Array.blit t.bw 0 bw 0 t.len;
    t.dates <- dates;
    t.cores <- cores;
    t.mem <- mem;
    t.bw <- bw
  end

let blit_segments t src dst n =
  Array.blit t.dates src t.dates dst n;
  Array.blit t.cores src t.cores dst n;
  Array.blit t.mem src t.mem dst n;
  Array.blit t.bw src t.bw dst n

let insert t i date (level : R.t) =
  grow t 1;
  blit_segments t i (i + 1) (t.len - i);
  t.dates.(i) <- date;
  t.cores.(i) <- level.R.cores;
  t.mem.(i) <- level.R.memory;
  t.bw.(i) <- level.R.bandwidth;
  t.len <- t.len + 1

let same_level t i j = t.cores.(i) = t.cores.(j) && t.mem.(i) = t.mem.(j) && t.bw.(i) = t.bw.(j)

(* Merge segment [i] into [i-1] when every component became equal. *)
let merge_at t i =
  if i > 0 && i < t.len && same_level t i (i - 1) then begin
    blit_segments t (i + 1) i (t.len - i - 1);
    t.len <- t.len - 1
  end

(* Apply [sign * req] on [start, stop), touching only overlapping
   segments; bounds are validated on the overlap before any mutation. *)
let update t ~start ~stop ~sign (req : R.t) =
  assert (start < stop);
  let start = Float.max start t.dates.(0) in
  if start < stop && not (R.equal req R.zero) then begin
    let dc = sign * req.R.cores and dm = sign * req.R.memory and db = sign * req.R.bandwidth in
    let i0 = seg_index t start in
    let j = ref i0 in
    while !j < t.len && t.dates.(!j) < stop do
      let c = t.cores.(!j) + dc and m = t.mem.(!j) + dm and b = t.bw.(!j) + db in
      if c < 0 || m < 0 || b < 0 then
        invalid_arg "Rprofile: availability would become negative";
      if
        c > t.capacity.R.cores || m > t.capacity.R.memory || b > t.capacity.R.bandwidth
      then invalid_arg "Rprofile: availability would exceed capacity";
      incr j
    done;
    let i0 =
      if t.dates.(i0) < start then begin
        insert t (i0 + 1) start (free_of t i0);
        i0 + 1
      end
      else i0
    in
    let jl = ref i0 in
    while !jl + 1 < t.len && t.dates.(!jl + 1) < stop do incr jl done;
    if Float.is_finite stop && (!jl = t.len - 1 || t.dates.(!jl + 1) > stop) then
      insert t (!jl + 1) stop (free_of t !jl);
    for k = i0 to !jl do
      t.cores.(k) <- t.cores.(k) + dc;
      t.mem.(k) <- t.mem.(k) + dm;
      t.bw.(k) <- t.bw.(k) + db
    done;
    merge_at t (!jl + 1);
    merge_at t i0;
    t.peak <- max t.peak t.len
  end

let reserve t ~start ~duration ~req =
  if duration <= 0.0 then invalid_arg "Rprofile.reserve: duration must be positive";
  t.n_reserve <- t.n_reserve + 1;
  update t ~start ~stop:(start +. duration) ~sign:(-1) req

let release t ~start ~duration ~req =
  if duration <= 0.0 then invalid_arg "Rprofile.release: duration must be positive";
  t.n_release <- t.n_release + 1;
  update t ~start ~stop:(start +. duration) ~sign:1 req

let fits_seg t i (req : R.t) =
  req.R.cores <= t.cores.(i) && req.R.memory <= t.mem.(i) && req.R.bandwidth <= t.bw.(i)

let find_start t ~earliest ~duration ~req =
  t.n_search <- t.n_search + 1;
  if not (R.fits req ~within:t.capacity) then raise Not_found;
  let earliest = Float.max earliest t.dates.(0) in
  let rec sweep j anchor =
    if fits_seg t j req then begin
      let seg_end = if j + 1 < t.len then t.dates.(j + 1) else infinity in
      if duration <= 0.0 || seg_end >= anchor +. duration then anchor
      else sweep (j + 1) anchor
    end
    else if j + 1 >= t.len then raise Not_found
    else sweep (j + 1) t.dates.(j + 1)
  in
  sweep (seg_index t earliest) earliest

let place t ~earliest ~duration ~req =
  let start = find_start t ~earliest ~duration ~req in
  if duration > 0.0 then reserve t ~start ~duration ~req;
  start

let pp ppf t =
  let pp_step ppf (s, f) = Format.fprintf ppf "%g->%a" s R.pp f in
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_step)
    (breakpoints t)
