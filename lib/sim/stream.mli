(** Streaming bounded-memory scheduling.

    [run] pulls jobs from a generator (non-decreasing release dates),
    places each at its earliest feasible start on a single
    {!Profile}, folds the placement into a {!Metrics.Acc}, and — by
    default — compacts the profile up to the arrival front.  Peak
    memory is O(live horizon) (the widest window of simultaneously
    relevant reservations), independent of the total number of jobs;
    `psched bench scale` measures this at up to 10^6 jobs.

    Determinism: the result is a pure function of the generator's
    output; compaction provably cannot change it (all queries are at or
    after the watermark — see {!Profile.compact}), and the test suite
    asserts equality of compacted and uncompacted runs. *)

type result = {
  jobs : int;  (** placements folded in *)
  metrics : Metrics.t;  (** criteria, accumulated incrementally *)
  profile : Profile.stats;  (** incl. peak live segments and folded totals *)
  schedule : Schedule.t option;  (** only with [~keep_schedule:true] *)
}

val run :
  ?compact:bool ->
  ?lag:float ->
  ?alloc:(Psched_workload.Job.t -> int) ->
  ?keep_schedule:bool ->
  m:int ->
  (unit -> Psched_workload.Job.t option) ->
  result
(** [run ~m next] drains [next] until it yields [None].

    [?compact] (default true): fold the timeline behind each arrival;
    disable only to measure the unbounded baseline.
    [?lag] (default 0): keep this many seconds of history behind the
    arrival front (for consumers that still probe the recent past).
    [?alloc] (default [min m (Job.max_procs job)]): processor count per
    job — the rigid count for rigid jobs.
    [?keep_schedule] (default false): also materialise the placements
    as a {!Schedule.t}, in arrival order — for tests and small runs
    only, as it restores O(n) memory.

    @raise Invalid_argument on decreasing releases, an allocation
    outside [\[1, m\]], or an allocation the job cannot run on. *)

val of_list : Psched_workload.Job.t list -> unit -> Psched_workload.Job.t option
(** Generator view of a job list (assumed sorted by release). *)
