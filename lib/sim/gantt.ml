(* Greedy exact-time row assignment shared by the SVG renderer: rows
   are processor lanes; each entry takes the first [procs] lanes free
   at its start (a valid schedule always has enough by capacity). *)
let assign_rows ~m entries =
  let busy_until = Array.make (max 1 m) neg_infinity in
  let eps = 1e-9 in
  let sorted =
    List.sort
      (fun (a : Schedule.entry) (b : Schedule.entry) -> compare (a.start, a.job_id) (b.start, b.job_id))
      entries
  in
  List.map
    (fun (e : Schedule.entry) ->
      let lanes = ref [] and found = ref 0 in
      for r = 0 to Array.length busy_until - 1 do
        if !found < e.procs && busy_until.(r) <= e.start +. eps then begin
          lanes := r :: !lanes;
          incr found
        end
      done;
      (* Oversubscribed input (or an m override below the true peak):
         double up on the lanes that free up soonest rather than fail. *)
      if !found < e.procs then begin
        let by_free =
          List.sort
            (fun a b -> compare (busy_until.(a), a) (busy_until.(b), b))
            (List.filter (fun r -> not (List.mem r !lanes))
               (List.init (Array.length busy_until) Fun.id))
        in
        List.iteri (fun i r -> if i < e.procs - !found then lanes := r :: !lanes) by_free
      end;
      List.iter (fun r -> busy_until.(r) <- Float.max busy_until.(r) (Schedule.completion e)) !lanes;
      (e, List.sort compare !lanes))
    sorted

let svg_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Fate marks for trace rendering: jobs the trace shed, killed or
   clipped under an outage get a distinct visual treatment so a glance
   at the chart answers "what did the disruption cost". *)
type mark = Shed | Killed | Clipped

let mark_str = function Shed -> "shed" | Killed -> "killed" | Clipped -> "outage-clipped"

let shed_ids marks entries =
  List.filter_map
    (fun (id, mk) ->
      if mk = Shed && not (List.exists (fun (e : Schedule.entry) -> e.job_id = id) entries)
      then Some id
      else None)
    marks
  |> List.sort_uniq compare

let render_svg ?(width = 960) ?(row_height = 14) ?(marks = []) sched =
  let open Schedule in
  let span = makespan sched in
  if span <= 0.0 || sched.entries = [] then
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"200\" height=\"40\">\
     <text x=\"8\" y=\"24\" font-family=\"sans-serif\" font-size=\"12\">(empty schedule)</text></svg>\n"
  else begin
    let m = sched.m in
    let left = 46 and top = 8 and axis = 26 in
    let legend = if marks = [] then 0 else 14 in
    let chart_w = width - left - 8 in
    let height = top + (m * row_height) + axis + legend in
    let x_of t = float_of_int left +. (t /. span *. float_of_int chart_w) in
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
          font-family=\"sans-serif\">\n"
         width height);
    Buffer.add_string b
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#f7f7f7\" stroke=\"#ccc\"/>\n"
         left top chart_w (m * row_height));
    if marks <> [] then
      Buffer.add_string b
        "<defs><pattern id=\"hatch\" width=\"6\" height=\"6\" patternTransform=\"rotate(45)\" \
         patternUnits=\"userSpaceOnUse\"><line x1=\"0\" y1=\"0\" x2=\"0\" y2=\"6\" \
         stroke=\"#8b1a1a\" stroke-width=\"2\"/></pattern></defs>\n";
    List.iter
      (fun ((e : entry), lanes) ->
        let x = x_of e.start in
        let w = Float.max 1.0 (x_of (completion e) -. x) in
        let hue = e.job_id * 47 mod 360 in
        let mark = List.assoc_opt e.job_id marks in
        let title =
          Printf.sprintf "job %d: start %g, duration %g, procs %d%s" e.job_id e.start e.duration
            e.procs
            (match mark with None -> "" | Some mk -> " (" ^ mark_str mk ^ ")")
        in
        let fill =
          match mark with
          | Some Killed -> "hsl(0,70%,45%)"
          | Some Clipped -> Printf.sprintf "hsl(%d,30%%,70%%)" hue
          | _ -> Printf.sprintf "hsl(%d,65%%,55%%)" hue
        in
        List.iter
          (fun lane ->
            let y = top + (lane * row_height) in
            Buffer.add_string b
              (Printf.sprintf
                 "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" \
                  fill=\"%s\" stroke=\"#333\" stroke-width=\"0.4\">\
                  <title>%s</title></rect>\n"
                 x (y + 1) w (row_height - 2) fill (svg_escape title));
            if mark <> None && mark <> Some Shed then
              Buffer.add_string b
                (Printf.sprintf
                   "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" \
                    fill=\"url(#hatch)\" stroke=\"none\"/>\n"
                   x (y + 1) w (row_height - 2)))
          lanes;
        (* One label on the entry's top lane when the bar is wide enough. *)
        match lanes with
        | lane :: _ when w >= 24.0 ->
          Buffer.add_string b
            (Printf.sprintf
               "<text x=\"%.1f\" y=\"%d\" font-size=\"%d\" fill=\"#fff\">%d</text>\n"
               (x +. 3.0)
               (top + (lane * row_height) + row_height - 4)
               (min 10 (row_height - 4))
               e.job_id)
        | _ -> ())
      (assign_rows ~m sched.entries);
    (* Processor and time axes. *)
    Buffer.add_string b
      (Printf.sprintf
         "<text x=\"4\" y=\"%d\" font-size=\"10\" fill=\"#555\">p0</text>\n\
          <text x=\"4\" y=\"%d\" font-size=\"10\" fill=\"#555\">p%d</text>\n"
         (top + row_height - 3)
         (top + (m * row_height) - 3)
         (m - 1));
    let y_axis = top + (m * row_height) + 14 in
    Buffer.add_string b
      (Printf.sprintf
         "<text x=\"%d\" y=\"%d\" font-size=\"10\" fill=\"#555\">0</text>\n\
          <text x=\"%d\" y=\"%d\" font-size=\"10\" fill=\"#555\" text-anchor=\"end\">%s</text>\n"
         left y_axis (left + chart_w) y_axis
         (svg_escape (Printf.sprintf "%.4g" span)));
    if marks <> [] then begin
      let shed = shed_ids marks sched.entries in
      let legend =
        Printf.sprintf "hatched = killed / outage-clipped%s"
          (if shed = [] then ""
           else
             Printf.sprintf "; shed (never placed): %s"
               (String.concat "," (List.map string_of_int shed)))
      in
      Buffer.add_string b
        (Printf.sprintf "<text x=\"%d\" y=\"%d\" font-size=\"10\" fill=\"#8b1a1a\">%s</text>\n"
           left (y_axis + 14) (svg_escape legend))
    end;
    Buffer.add_string b "</svg>\n";
    Buffer.contents b
  end

let label_of_job id =
  let alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  alphabet.[id mod String.length alphabet]

let render ?(width = 72) ?(max_rows = 32) ?(marks = []) sched =
  let open Schedule in
  let span = makespan sched in
  if span <= 0.0 || sched.entries = [] then "(empty schedule)\n"
  else begin
    let rows = min max_rows sched.m in
    let grid = Array.make_matrix rows width '.' in
    (* Row occupancy expressed in columns: free.(r).(c) = true. *)
    let free = Array.make_matrix rows width true in
    let col_of t =
      min (width - 1) (int_of_float (Float.floor (t /. span *. float_of_int width)))
    in
    let draw (e : entry) =
      let c0 = col_of e.start in
      let c1 = max c0 (col_of (completion e -. (1e-9 *. span))) in
      (* How many of the visible rows this job occupies, proportional to
         its share of the machine. *)
      let nrows =
        max 1 (int_of_float (Float.round (float_of_int (e.procs * rows) /. float_of_int sched.m)))
      in
      let mark =
        (* A marked fate overrides the id label: the glyph says what
           happened, the legend says what the glyph means. *)
        match List.assoc_opt e.job_id marks with
        | Some Killed -> 'x'
        | Some Clipped -> '~'
        | _ -> label_of_job e.job_id
      in
      let remaining = ref nrows in
      for r = 0 to rows - 1 do
        if !remaining > 0 then begin
          let row_free = ref true in
          for c = c0 to c1 do
            if not free.(r).(c) then row_free := false
          done;
          if !row_free then begin
            for c = c0 to c1 do
              grid.(r).(c) <- mark;
              free.(r).(c) <- false
            done;
            decr remaining
          end
        end
      done
    in
    List.iter draw (sort_by_start sched).entries;
    let buf = Buffer.create (rows * (width + 8)) in
    for r = 0 to rows - 1 do
      Buffer.add_string buf (Printf.sprintf "p%-3d |%s|\n" r (String.init width (fun c -> grid.(r).(c))))
    done;
    Buffer.add_string buf (Printf.sprintf "     +%s+\n" (String.make width '-'));
    Buffer.add_string buf (Printf.sprintf "      0%*s\n" (width - 1) (Printf.sprintf "%.4g" span));
    if marks <> [] then begin
      Buffer.add_string buf "      x killed  ~ outage-clipped";
      (match shed_ids marks sched.entries with
      | [] -> ()
      | shed ->
        Buffer.add_string buf
          (Printf.sprintf "  shed (never placed): %s"
             (String.concat "," (List.map string_of_int shed))));
      Buffer.add_char buf '\n'
    end;
    Buffer.contents buf
  end
