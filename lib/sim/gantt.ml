let label_of_job id =
  let alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  alphabet.[id mod String.length alphabet]

let render ?(width = 72) ?(max_rows = 32) sched =
  let open Schedule in
  let span = makespan sched in
  if span <= 0.0 || sched.entries = [] then "(empty schedule)\n"
  else begin
    let rows = min max_rows sched.m in
    let grid = Array.make_matrix rows width '.' in
    (* Row occupancy expressed in columns: free.(r).(c) = true. *)
    let free = Array.make_matrix rows width true in
    let col_of t =
      min (width - 1) (int_of_float (Float.floor (t /. span *. float_of_int width)))
    in
    let draw (e : entry) =
      let c0 = col_of e.start in
      let c1 = max c0 (col_of (completion e -. (1e-9 *. span))) in
      (* How many of the visible rows this job occupies, proportional to
         its share of the machine. *)
      let nrows =
        max 1 (int_of_float (Float.round (float_of_int (e.procs * rows) /. float_of_int sched.m)))
      in
      let mark = label_of_job e.job_id in
      let remaining = ref nrows in
      for r = 0 to rows - 1 do
        if !remaining > 0 then begin
          let row_free = ref true in
          for c = c0 to c1 do
            if not free.(r).(c) then row_free := false
          done;
          if !row_free then begin
            for c = c0 to c1 do
              grid.(r).(c) <- mark;
              free.(r).(c) <- false
            done;
            decr remaining
          end
        end
      done
    in
    List.iter draw (sort_by_start sched).entries;
    let buf = Buffer.create (rows * (width + 8)) in
    for r = 0 to rows - 1 do
      Buffer.add_string buf (Printf.sprintf "p%-3d |%s|\n" r (String.init width (fun c -> grid.(r).(c))))
    done;
    Buffer.add_string buf (Printf.sprintf "     +%s+\n" (String.make width '-'));
    Buffer.add_string buf (Printf.sprintf "      0%*s\n" (width - 1) (Printf.sprintf "%.4g" span));
    Buffer.contents buf
  end
