(** Multi-resource availability profile.

    The indexed step-timeline engine of {!Profile}, generalised to
    track a fixed {!Psched_platform.Resource.t} vector (free cores,
    memory, bandwidth) per segment instead of a scalar free-processor
    count.  A window fits only when {e every} requested component fits
    in every overlapping segment.

    With an unbounded capacity ({!Psched_platform.Resource.cap}
    [~cores:m ()]) and zero non-core requests, every operation returns
    bit-identical dates to the scalar {!Profile} — the degenerate
    compatibility contract of DESIGN.md section 15, property-tested in
    the QCheck suite. *)

type t

type stats = { segments : int; peak_segments : int; reserves : int; releases : int; searches : int }

val create : Psched_platform.Resource.t -> t
(** @raise Invalid_argument when the capacity has no cores. *)

val capacity : t -> Psched_platform.Resource.t
val free_at : t -> float -> Psched_platform.Resource.t

val find_start :
  t -> earliest:float -> duration:float -> req:Psched_platform.Resource.t -> float
(** Earliest date [>= earliest] at which [req] fits for [duration].
    @raise Not_found when [req] never fits (exceeds capacity). *)

val reserve : t -> start:float -> duration:float -> req:Psched_platform.Resource.t -> unit
(** @raise Invalid_argument on non-positive durations or when any
    component would go negative. *)

val release : t -> start:float -> duration:float -> req:Psched_platform.Resource.t -> unit
(** Inverse of {!reserve}; @raise Invalid_argument when any component
    would exceed capacity. *)

val place : t -> earliest:float -> duration:float -> req:Psched_platform.Resource.t -> float
(** [find_start] then [reserve]; returns the chosen start. *)

val breakpoints : t -> (float * Psched_platform.Resource.t) list
val stats : t -> stats
val copy : t -> t
val pp : Format.formatter -> t -> unit
