(* Streaming bounded-memory scheduler.

   Consumes jobs one at a time from a generator (releases must be
   non-decreasing, as in any online arrival process), places each with
   the greedy earliest-start rule against a single Profile, folds the
   placement into a Metrics.Acc, and compacts the profile up to the
   current release: nothing before the arrival front can influence a
   later placement, so the live timeline only ever spans the occupied
   horizon.  No Schedule.t is built unless explicitly requested, so
   peak memory is O(live horizon), not O(total jobs). *)

open Psched_workload

type result = {
  jobs : int;
  metrics : Metrics.t;
  profile : Profile.stats;
  schedule : Schedule.t option;
}

let default_alloc ~m job = min m (Job.max_procs job)

let run ?(compact = true) ?(lag = 0.0) ?alloc ?(keep_schedule = false) ~m next =
  if m < 1 then invalid_arg "Stream.run: capacity must be >= 1";
  if lag < 0.0 then invalid_arg "Stream.run: negative lag";
  let alloc = match alloc with Some f -> f | None -> default_alloc ~m in
  let profile = Profile.create m in
  let acc = Metrics.Acc.create ~m in
  let entries = ref [] in
  let last_release = ref neg_infinity in
  let rec loop () =
    match next () with
    | None -> ()
    | Some (job : Job.t) ->
      if job.release < !last_release then
        invalid_arg "Stream.run: releases must be non-decreasing";
      last_release := job.release;
      (* The arrival front is the compaction watermark: every later job
         is released at or after it, and find_start never looks left of
         [earliest], so dropping the history is unobservable.  Per-job
         compaction also leaves the origin exactly at the next job's
         release, so reservations starting there reuse the origin
         breakpoint instead of splitting a segment — the live window
         stays both short and coarse. *)
      if compact then
        ignore (Profile.compact profile ~before:(Float.max 0.0 (job.release -. lag)));
      let procs = alloc job in
      if procs < 1 || procs > m then
        invalid_arg
          (Printf.sprintf "Stream.run: allocation %d for job %d out of [1, %d]" procs job.id m);
      let duration = Job.time_on job procs in
      if not (Float.is_finite duration) then
        invalid_arg
          (Printf.sprintf "Stream.run: job %d cannot run on %d processors" job.id procs);
      let start = Profile.find_start profile ~earliest:job.release ~duration ~procs in
      if duration > 0.0 then Profile.reserve profile ~start ~duration ~procs;
      Metrics.Acc.add acc ~job ~start ~procs ~duration;
      if keep_schedule then
        entries := { Schedule.job_id = job.id; start; duration; procs; cluster = 0 } :: !entries;
      loop ()
  in
  loop ();
  {
    jobs = Metrics.Acc.jobs_seen acc;
    metrics = Metrics.Acc.result acc;
    profile = Profile.stats profile;
    schedule = (if keep_schedule then Some (Schedule.make ~m (List.rev !entries)) else None);
  }

let of_list jobs =
  let rest = ref jobs in
  fun () ->
    match !rest with
    | [] -> None
    | j :: tl ->
      rest := tl;
      Some j
