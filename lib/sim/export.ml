let float_str v = Printf.sprintf "%.17g" v

let json_string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* ------------------------------------------------- per-shape encoders *)

let schedule_to_csv (s : Schedule.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "job_id,start,duration,procs,cluster\n";
  List.iter
    (fun (e : Schedule.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%d,%d\n" e.Schedule.job_id (float_str e.Schedule.start)
           (float_str e.Schedule.duration) e.Schedule.procs e.Schedule.cluster))
    (Schedule.sort_by_start s).Schedule.entries;
  Buffer.contents buf

let schedule_to_json (s : Schedule.t) =
  let entry (e : Schedule.entry) =
    Printf.sprintf {|{"job":%d,"start":%s,"duration":%s,"procs":%d,"cluster":%d}|}
      e.Schedule.job_id (float_str e.Schedule.start) (float_str e.Schedule.duration)
      e.Schedule.procs e.Schedule.cluster
  in
  Printf.sprintf {|{"m":%d,"entries":[%s]}|} s.Schedule.m
    (String.concat "," (List.map entry (Schedule.sort_by_start s).Schedule.entries))

let metrics_fields (m : Metrics.t) =
  [
    ("makespan", float_str m.Metrics.makespan);
    ("sum_completion", float_str m.Metrics.sum_completion);
    ("sum_weighted_completion", float_str m.Metrics.sum_weighted_completion);
    ("mean_flow", float_str m.Metrics.mean_flow);
    ("max_flow", float_str m.Metrics.max_flow);
    ("mean_stretch", float_str m.Metrics.mean_stretch);
    ("max_stretch", float_str m.Metrics.max_stretch);
    ("tardy_count", string_of_int m.Metrics.tardy_count);
    ("sum_tardiness", float_str m.Metrics.sum_tardiness);
    ("max_tardiness", float_str m.Metrics.max_tardiness);
    ("utilisation", float_str m.Metrics.utilisation);
    ("throughput", float_str m.Metrics.throughput);
  ]

let metrics_to_csv runs =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "name";
  (match runs with
  | (_, m) :: _ -> List.iter (fun (k, _) -> Buffer.add_string buf ("," ^ k)) (metrics_fields m)
  | [] ->
    Buffer.add_string buf
      ",makespan,sum_completion,sum_weighted_completion,mean_flow,max_flow,mean_stretch,\
       max_stretch,tardy_count,sum_tardiness,max_tardiness,utilisation,throughput");
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, m) ->
      Buffer.add_string buf name;
      List.iter (fun (_, v) -> Buffer.add_string buf ("," ^ v)) (metrics_fields m);
      Buffer.add_char buf '\n')
    runs;
  Buffer.contents buf

let metrics_to_json runs =
  let one (name, m) =
    Printf.sprintf "%s:{%s}" (json_string name)
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) v) (metrics_fields m)))
  in
  Printf.sprintf "{%s}" (String.concat "," (List.map one runs))

let series_to_csv ~header rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map float_str row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let table_to_json ?(meta = []) ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s: %s,\n" (json_string k) v))
    meta;
  Buffer.add_string buf
    (Printf.sprintf "  \"header\": [%s],\n" (String.concat "," (List.map json_string header)));
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf "    [%s]%s\n"
           (String.concat "," (List.map float_str row))
           (if i = n - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let table_to_csv ~meta ~header rows =
  let buf = Buffer.create 512 in
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "# %s = %s\n" k v)) meta;
  Buffer.add_string buf (series_to_csv ~header rows);
  Buffer.contents buf

let obs_to_json (s : Psched_obs.Trace.summary) =
  let pairs kv enc = String.concat "," (List.map enc kv) in
  let lo, hi = s.Psched_obs.Trace.sim_span in
  let kinds =
    pairs s.Psched_obs.Trace.kinds (fun (k, n) ->
        Printf.sprintf "%s:%d" (json_string k) n)
  in
  let counters =
    pairs s.Psched_obs.Trace.counters (fun (k, v) ->
        Printf.sprintf "%s:%s" (json_string k) (float_str v))
  in
  let timers =
    pairs s.Psched_obs.Trace.timers (fun (k, (n, total)) ->
        Printf.sprintf "%s:{\"calls\":%d,\"seconds\":%s}" (json_string k) n (float_str total))
  in
  let spans =
    pairs s.Psched_obs.Trace.spans (fun (k, (n, total)) ->
        Printf.sprintf "%s:{\"count\":%d,\"seconds\":%s}" (json_string k) n (float_str total))
  in
  let hists =
    pairs s.Psched_obs.Trace.hists (fun (k, (bounds, counts)) ->
        Printf.sprintf "%s:{\"bounds\":[%s],\"counts\":[%s]}" (json_string k)
          (String.concat "," (List.map float_str (Array.to_list bounds)))
          (String.concat "," (List.map string_of_int (Array.to_list counts))))
  in
  Printf.sprintf
    {|{"events":%d,"dropped":%d,"sim_span":[%s,%s],"kinds":{%s},"spans":{%s},"counters":{%s},"timers":{%s},"histograms":{%s}}|}
    s.Psched_obs.Trace.events s.Psched_obs.Trace.dropped (float_str lo) (float_str hi) kinds
    spans counters timers hists

let obs_to_csv (s : Psched_obs.Trace.summary) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "section,name,value\n";
  let lo, hi = s.Psched_obs.Trace.sim_span in
  Buffer.add_string buf (Printf.sprintf "trace,events,%d\n" s.Psched_obs.Trace.events);
  Buffer.add_string buf (Printf.sprintf "trace,dropped,%d\n" s.Psched_obs.Trace.dropped);
  Buffer.add_string buf (Printf.sprintf "trace,sim_first,%s\n" (float_str lo));
  Buffer.add_string buf (Printf.sprintf "trace,sim_last,%s\n" (float_str hi));
  List.iter
    (fun (k, n) -> Buffer.add_string buf (Printf.sprintf "kind,%s,%d\n" k n))
    s.Psched_obs.Trace.kinds;
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "counter,%s,%s\n" k (float_str v)))
    s.Psched_obs.Trace.counters;
  List.iter
    (fun (k, (n, total)) ->
      Buffer.add_string buf (Printf.sprintf "timer,%s,%d\n" k n);
      Buffer.add_string buf (Printf.sprintf "timer_seconds,%s,%s\n" k (float_str total)))
    s.Psched_obs.Trace.timers;
  List.iter
    (fun (k, (n, total)) ->
      Buffer.add_string buf (Printf.sprintf "span,%s,%d\n" k n);
      Buffer.add_string buf (Printf.sprintf "span_seconds,%s,%s\n" k (float_str total)))
    s.Psched_obs.Trace.spans;
  Buffer.contents buf

(* ------------------------------------------------------- unified API *)

type doc =
  | Schedule of Schedule.t
  | Metrics of (string * Metrics.t) list
  | Series of { header : string list; rows : float list list }
  | Table of { meta : (string * string) list; header : string list; rows : float list list }
  | Obs_summary of Psched_obs.Trace.summary

let to_json = function
  | Schedule s -> schedule_to_json s
  | Metrics runs -> metrics_to_json runs
  | Series { header; rows } -> table_to_json ~header rows
  | Table { meta; header; rows } -> table_to_json ~meta ~header rows
  | Obs_summary s -> obs_to_json s

let to_csv = function
  | Schedule s -> schedule_to_csv s
  | Metrics runs -> metrics_to_csv runs
  | Series { header; rows } -> series_to_csv ~header rows
  | Table { meta; header; rows } -> table_to_csv ~meta ~header rows
  | Obs_summary s -> obs_to_csv s

(* -------------------------------------------------- legacy entry points *)


let save path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
