let float_str v = Printf.sprintf "%.17g" v

let schedule_csv (s : Schedule.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "job_id,start,duration,procs,cluster\n";
  List.iter
    (fun (e : Schedule.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%d,%d\n" e.Schedule.job_id (float_str e.Schedule.start)
           (float_str e.Schedule.duration) e.Schedule.procs e.Schedule.cluster))
    (Schedule.sort_by_start s).Schedule.entries;
  Buffer.contents buf

let schedule_json (s : Schedule.t) =
  let entry (e : Schedule.entry) =
    Printf.sprintf {|{"job":%d,"start":%s,"duration":%s,"procs":%d,"cluster":%d}|}
      e.Schedule.job_id (float_str e.Schedule.start) (float_str e.Schedule.duration)
      e.Schedule.procs e.Schedule.cluster
  in
  Printf.sprintf {|{"m":%d,"entries":[%s]}|} s.Schedule.m
    (String.concat "," (List.map entry (Schedule.sort_by_start s).Schedule.entries))

let metrics_csv runs =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "name,makespan,sum_completion,sum_weighted_completion,mean_flow,max_flow,mean_stretch,\
     max_stretch,tardy_count,sum_tardiness,max_tardiness,utilisation,throughput\n";
  List.iter
    (fun (name, (m : Metrics.t)) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%s,%s,%s,%s,%d,%s,%s,%s,%s\n" name
           (float_str m.Metrics.makespan) (float_str m.Metrics.sum_completion)
           (float_str m.Metrics.sum_weighted_completion) (float_str m.Metrics.mean_flow)
           (float_str m.Metrics.max_flow) (float_str m.Metrics.mean_stretch)
           (float_str m.Metrics.max_stretch) m.Metrics.tardy_count
           (float_str m.Metrics.sum_tardiness) (float_str m.Metrics.max_tardiness)
           (float_str m.Metrics.utilisation) (float_str m.Metrics.throughput)))
    runs;
  Buffer.contents buf

let series_csv ~header rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map float_str row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let json_string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let table_json ?(meta = []) ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s: %s,\n" (json_string k) v))
    meta;
  Buffer.add_string buf
    (Printf.sprintf "  \"header\": [%s],\n" (String.concat "," (List.map json_string header)));
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf "    [%s]%s\n"
           (String.concat "," (List.map float_str row))
           (if i = n - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let save path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
