type entry = { job_id : int; start : float; duration : float; procs : int; cluster : int }
type t = { m : int; entries : entry list }

let make ~m entries = { m; entries }

let entry ?(cluster = 0) ?(speed = 1.0) ~job ~start ~procs () =
  if speed <= 0.0 then invalid_arg "Schedule.entry: speed must be positive";
  let duration = Psched_workload.Job.time_on job procs /. speed in
  if not (Float.is_finite duration) then
    invalid_arg
      (Printf.sprintf "Schedule.entry: job %d cannot run on %d processors"
         job.Psched_workload.Job.id procs);
  { job_id = job.Psched_workload.Job.id; start; duration; procs; cluster }

let completion e = e.start +. e.duration
let makespan t = List.fold_left (fun acc e -> Float.max acc (completion e)) 0.0 t.entries

let completion_of t id =
  match List.find_opt (fun e -> e.job_id = id) t.entries with
  | Some e -> completion e
  | None -> raise Not_found

let completions t =
  (* First entry per job id wins, matching [completion_of]'s scan order
     on schedules with repeated ids (fault-injected restart chains). *)
  let tbl = Hashtbl.create (max 16 (List.length t.entries)) in
  List.iter
    (fun e -> if not (Hashtbl.mem tbl e.job_id) then Hashtbl.add tbl e.job_id (completion e))
    t.entries;
  tbl

let sort_by_start t =
  { t with entries = List.sort (fun a b -> compare (a.start, a.job_id) (b.start, b.job_id)) t.entries }

let usage_at t date =
  List.fold_left
    (fun acc e -> if e.start <= date && date < completion e then acc + e.procs else acc)
    0 t.entries

let peak_usage t =
  (* Edge sweep: +procs at each start, -procs at each completion,
     sorted by (date, delta) so that with half-open intervals a job
     ending at [d] frees its processors before one starting at [d]
     claims them.  O(n log n) against the former O(n^2) usage_at scan. *)
  let edges =
    List.concat_map (fun e -> [ (e.start, e.procs); (completion e, -e.procs) ]) t.entries
    |> List.sort (fun (d0, p0) (d1, p1) ->
           match Float.compare d0 d1 with 0 -> compare p0 p1 | c -> c)
  in
  let peak = ref 0 and running = ref 0 in
  List.iter
    (fun (_, delta) ->
      running := !running + delta;
      if !running > !peak then peak := !running)
    edges;
  !peak

let total_work t =
  List.fold_left (fun acc e -> acc +. (float_of_int e.procs *. e.duration)) 0.0 t.entries

let utilisation t =
  let span = makespan t in
  if span <= 0.0 then 0.0 else total_work t /. (float_of_int t.m *. span)

let pp_entry ppf e =
  Format.fprintf ppf "job#%d @@%g +%g x%d" e.job_id e.start e.duration e.procs

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule on %d procs (Cmax=%g):@,%a@]" t.m (makespan t)
    (Format.pp_print_list pp_entry)
    (sort_by_start t).entries
