(** Schedule validity checker.

    Every policy in the library is tested through this single oracle:
    a schedule is valid for a job set iff

    - every job is placed exactly once, on a feasible allocation, with
      the duration implied by that allocation;
    - no job starts before its release date;
    - at every instant the allocated processors (plus active
      reservations) fit within cluster capacity. *)

type violation =
  | Missing_job of int
  | Duplicate_job of int
  | Unknown_job of int
  | Bad_allocation of int  (** infeasible processor count *)
  | Bad_duration of int  (** duration does not match the allocation *)
  | Before_release of int
  | Over_capacity of { date : float; used : int; capacity : int; job_ids : int list }
      (** capacity exceeded from [date]: [used] > [capacity], with the
          ids of the jobs running there ([used - capacity] is the
          overshoot; reservations add to [used] but not to
          [job_ids]) *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?speed:float ->
  ?reservations:Psched_platform.Reservation.t list ->
  jobs:Psched_workload.Job.t list ->
  Schedule.t ->
  violation list
(** All violations found ([] iff the schedule is valid).  [speed]
    (default 1.0) is the cluster speed: durations are expected to be
    the job execution time divided by it. *)

val is_valid :
  ?speed:float ->
  ?reservations:Psched_platform.Reservation.t list ->
  jobs:Psched_workload.Job.t list ->
  Schedule.t ->
  bool

val check_exn :
  ?speed:float ->
  ?reservations:Psched_platform.Reservation.t list ->
  jobs:Psched_workload.Job.t list ->
  Schedule.t ->
  unit
(** @raise Failure with a readable report when invalid. *)
