(** Schedule validity checker.

    Every policy in the library is tested through this single oracle:
    a schedule is valid for a job set iff

    - every job is placed exactly once, on a feasible allocation, with
      the duration implied by that allocation;
    - no job starts before its release date;
    - at every instant the allocated processors (plus active
      reservations) fit within cluster capacity;
    - when a capacity vector is supplied, at every instant the summed
      request vectors fit within every bounded resource component
      (multi-resource validity). *)

type violation =
  | Missing_job of int
  | Duplicate_job of int
  | Unknown_job of int
  | Bad_allocation of int  (** infeasible processor count *)
  | Bad_duration of int  (** duration does not match the allocation *)
  | Before_release of int
  | Over_capacity of { date : float; used : int; capacity : int; job_ids : int list }
      (** capacity exceeded from [date]: [used] > [capacity], with the
          ids of the jobs running there ([used - capacity] is the
          overshoot; reservations add to [used] but not to
          [job_ids]) *)
  | Over_resource of { resource : string; date : float; used : int; capacity : int }
      (** a non-core component ("memory" or "bandwidth") of the
          capacity vector exceeded from [date] *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?speed:float ->
  ?reservations:Psched_platform.Reservation.t list ->
  ?cap:Psched_platform.Resource.t ->
  jobs:Psched_workload.Job.t list ->
  Schedule.t ->
  violation list
(** All violations found ([] iff the schedule is valid).  [speed]
    (default 1.0) is the cluster speed: durations are expected to be
    the job execution time divided by it.  [cap] (default absent)
    additionally checks every bounded non-core component of the
    capacity vector against the entries' request vectors; its cores
    component is ignored — scalar processor capacity is already
    checked against the schedule's [m]. *)

val is_valid :
  ?speed:float ->
  ?reservations:Psched_platform.Reservation.t list ->
  ?cap:Psched_platform.Resource.t ->
  jobs:Psched_workload.Job.t list ->
  Schedule.t ->
  bool

val check_exn :
  ?speed:float ->
  ?reservations:Psched_platform.Reservation.t list ->
  ?cap:Psched_platform.Resource.t ->
  jobs:Psched_workload.Job.t list ->
  Schedule.t ->
  unit
(** @raise Failure with a readable report when invalid. *)
