(** Schedule, metric and trace-summary export for external tooling
    (gnuplot, spreadsheets, trend tracking).

    One document type, one encoder pair: build a {!doc} and render it
    with {!to_json} or {!to_csv}.  Everything is hand-rolled (no JSON
    dependency); floats print with full round-trip precision. *)

type doc =
  | Schedule of Schedule.t
      (** CSV: one line per placement with header; JSON:
          [{m, entries: [{job, start, duration, procs, cluster}]}]. *)
  | Metrics of (string * Metrics.t) list
      (** Named runs; CSV has one line per run with all §3 criteria as
          columns, JSON one object per run name. *)
  | Series of { header : string list; rows : float list list }
      (** Generic numeric table (e.g. the Figure 2 points). *)
  | Table of { meta : (string * string) list; header : string list; rows : float list list }
      (** Numeric table with metadata; [meta] values are spliced
          verbatim into JSON (pre-encode strings with {!json_string})
          and become [# k = v] comment lines in CSV. *)
  | Obs_summary of Psched_obs.Trace.summary
      (** An observability digest ({!Psched_obs.Trace.summarize}):
          event-kind counts, spans, counters, timers, histograms. *)

val to_json : doc -> string
val to_csv : doc -> string

val json_string : string -> string
(** JSON-escaped, quoted string literal. *)

val save : string -> string -> unit
(** [save path content]: write a file (for CLI export commands). *)

(** {2 Legacy entry points}

    Thin aliases over {!to_json}/{!to_csv}, kept for source
    compatibility. *)

val schedule_csv : Schedule.t -> string
(** @deprecated Use [to_csv (Schedule s)]. *)

val schedule_json : Schedule.t -> string
(** @deprecated Use [to_json (Schedule s)]. *)

val metrics_csv : (string * Metrics.t) list -> string
(** @deprecated Use [to_csv (Metrics runs)]. *)

val series_csv : header:string list -> float list list -> string
(** @deprecated Use [to_csv (Series { header; rows })]. *)

val table_json : ?meta:(string * string) list -> header:string list -> float list list -> string
(** @deprecated Use [to_json (Table { meta; header; rows })]. *)
