(** Schedule, metric and trace-summary export for external tooling
    (gnuplot, spreadsheets, trend tracking).

    One document type, one encoder pair: build a {!doc} and render it
    with {!to_json} or {!to_csv}.  Everything is hand-rolled (no JSON
    dependency); floats print with full round-trip precision. *)

type doc =
  | Schedule of Schedule.t
      (** CSV: one line per placement with header; JSON:
          [{m, entries: [{job, start, duration, procs, cluster}]}]. *)
  | Metrics of (string * Metrics.t) list
      (** Named runs; CSV has one line per run with all §3 criteria as
          columns, JSON one object per run name. *)
  | Series of { header : string list; rows : float list list }
      (** Generic numeric table (e.g. the Figure 2 points). *)
  | Table of { meta : (string * string) list; header : string list; rows : float list list }
      (** Numeric table with metadata; [meta] values are spliced
          verbatim into JSON (pre-encode strings with {!json_string})
          and become [# k = v] comment lines in CSV. *)
  | Obs_summary of Psched_obs.Trace.summary
      (** An observability digest ({!Psched_obs.Trace.summarize}):
          event-kind counts, spans, counters, timers, histograms. *)

val to_json : doc -> string
val to_csv : doc -> string

val json_string : string -> string
(** JSON-escaped, quoted string literal. *)

val save : string -> string -> unit
(** [save path content]: write a file (for CLI export commands). *)
