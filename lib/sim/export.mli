(** Schedule and metric export for external tooling (gnuplot,
    spreadsheets, the paper's original plots were gnuplot). *)

val schedule_csv : Schedule.t -> string
(** One line per placement: [job_id,start,duration,procs,cluster],
    with a header line. *)

val schedule_json : Schedule.t -> string
(** Compact JSON: {m, entries: [{job, start, duration, procs,
    cluster}]}.  Hand-rolled (no JSON dependency); floats printed with
    full round-trip precision. *)

val metrics_csv : (string * Metrics.t) list -> string
(** One line per named run, all §3 criteria as columns. *)

val series_csv : header:string list -> (float list) list -> string
(** Generic numeric table (e.g. the Figure 2 points) as CSV. *)

val json_string : string -> string
(** JSON-escaped, quoted string literal. *)

val table_json : ?meta:(string * string) list -> header:string list -> float list list -> string
(** Numeric table as JSON [{..meta.., header: [...], rows: [[...]]}].
    [meta] values are spliced verbatim (pre-encode strings with
    {!json_string}); floats keep full round-trip precision. *)

val save : string -> string -> unit
(** [save path content]: write a file (for CLI export commands). *)
