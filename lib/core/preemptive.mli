(** Optimal preemptive scheduling (McNaughton's wrap-around rule).

    The theoretical anchor of malleability (§2.2: malleable jobs are
    implemented "by preemption of the tasks or simply by data
    redistributions"): for sequential tasks with preemption and
    migration allowed, the minimum makespan on [m] identical
    processors is exactly

      C* = max(sum p_j / m, max_j p_j)

    attained by filling processors one after the other and wrapping a
    task to the next processor when the horizon C* is reached
    (McNaughton 1959).  A task is never scheduled on two processors at
    the same instant because each piece of a wrapped task sits at the
    horizon boundary.

    This yields both a lower-bound oracle for the malleable simulator
    and a scheduler for the paper's preemption-capable runtimes. *)

open Psched_workload

type piece = { job_id : int; proc : int; start : float; stop : float }

type t = { pieces : piece list; makespan : float; m : int }

val optimum : m:int -> float list -> float
(** max(sum/m, max). *)

val schedule : m:int -> Job.t list -> t
(** Wrap-around schedule of the jobs' sequential times (release dates
    must be 0; allocations are 1 processor, preempted/migrated as
    needed).
    @raise Invalid_argument on release dates or [m < 1]. *)

val validate : t -> Job.t list -> bool
(** Every job gets exactly its processing time, pieces on one
    processor never overlap, and no job runs on two processors
    simultaneously. *)
