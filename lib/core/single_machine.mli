(** Single-machine scheduling, the building block of §4.3.

    Sorting by increasing processing time (SPT) minimises sum C_i;
    sorting by Smith's ratio p/w (WSPT) minimises sum w_i C_i.  Batch
    (shelf) sequencing reduces to this problem: each shelf is a
    single-machine job whose length is the shelf height and whose
    weight is the sum of its tasks' weights. *)

open Psched_workload

val spt_order : Job.t list -> Job.t list
(** Jobs sorted by increasing sequential time (ties by id). *)

val wspt_order : Job.t list -> Job.t list
(** Jobs sorted by increasing p/w (Smith's rule, ties by id). *)

val schedule : Job.t list -> Psched_sim.Schedule.t
(** WSPT schedule on one machine (all release dates must be 0 for the
    optimality guarantee; release dates are still honoured if present,
    by idling). *)

val sum_weighted_completion_of_order : Job.t list -> float
(** sum w_i C_i of executing the given order back-to-back from 0,
    ignoring release dates — the shelf-sequencing objective. *)

val brute_force_best : Job.t list -> float
(** Minimum of {!sum_weighted_completion_of_order} over all
    permutations; factorial cost, test use only (n <= 8). *)
