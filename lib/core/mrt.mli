(** MRT dual-approximation algorithm for off-line moldable makespan
    (§4.1 of the paper; Mounié–Rapine–Trystram).

    Given a guess [lambda] of the optimal makespan, the algorithm
    either {e certifies} that the optimum exceeds [lambda] or produces
    a schedule close to [3 lambda / 2].  A binary search on [lambda]
    (dual approximation, Hochbaum–Shmoys) then yields a
    (3/2 + epsilon)-approximation.

    The guess test follows the paper's constraints on an optimal
    schedule of length <= lambda:
    - every task fits: min time <= lambda;
    - tasks that cannot run within lambda/2 use at most m processors
      in total at their canonical allocation;
    - the minimum total work over assignments of every task to either a
      "long" shelf (time <= lambda, canonical allocation
      gamma(j, lambda), shelf width <= m) or a "short" shelf (time <=
      lambda/2, allocation gamma(j, lambda/2)) — computed by a knapsack
      dynamic program — is at most lambda·m.

    Rejection therefore always certifies optimum > lambda.  On
    acceptance the two-shelf relaxed solution is turned into a feasible
    schedule: shelf-1 tasks start at 0; shelf-2 tasks are packed
    greedily into the remaining capacity (this replaces the paper's
    chain of local transformations; the binary search keeps the best
    schedule seen, and the empirical ratio stays within 3/2 + epsilon —
    see EXPERIMENTS.md). *)

open Psched_workload

val canonical_alloc : m:int -> deadline:float -> Job.t -> int option
(** gamma(j, d): smallest feasible allocation (<= m) whose execution
    time is at most [deadline]; [None] if even the fastest feasible
    allocation is too slow. *)

type verdict =
  | Rejected  (** certificate that no schedule of length <= lambda exists *)
  | Accepted of Psched_sim.Schedule.t

module Make (P : Psched_sim.Profile_intf.S) : sig
  val try_guess : ?obs:Psched_obs.Obs.t -> m:int -> lambda:float -> Job.t list -> verdict

  val schedule :
    ?obs:Psched_obs.Obs.t -> ?epsilon:float -> m:int -> Job.t list -> Psched_sim.Schedule.t
end
(** The algorithm over an arbitrary profile engine, used to compare
    engines under the same scheduler (see [bench/main.exe perf]). *)

val try_guess : ?obs:Psched_obs.Obs.t -> m:int -> lambda:float -> Job.t list -> verdict

val schedule :
  ?obs:Psched_obs.Obs.t -> ?epsilon:float -> m:int -> Job.t list -> Psched_sim.Schedule.t
(** Full dual-approximation binary search ([epsilon] defaults to 0.01),
    on the default {!Psched_sim.Profile} engine, with per-job
    allocation tables ({!Psched_workload.Alloc_cache}) built once and
    shared by every lambda guess.  Release dates are ignored (off-line
    problem: all tasks available).

    With an enabled [obs], the dual search is bracketed in an
    ["mrt.search"] span and every lambda guess emits an ["mrt.guess"]
    event (accepted or rejected), with ["mrt.prune"]/["mrt.knapsack"]
    recording whether the floor bound excluded the guess before the
    knapsack DP ran; observability never changes the schedule.

    Precondition: [Job.min_procs j <= m] for every job.  The
    {!Schedulers} adapter enforces this with a typed [Too_wide]
    error; direct callers must filter wider jobs themselves. *)
