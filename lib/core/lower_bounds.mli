(** Computable lower bounds on the optimisation criteria of §3.

    Approximation ratios in the paper are stated against the (unknown)
    optimum; all empirical ratios in this reproduction are measured
    against these bounds, which lower-bound the optimum, so measured
    ratios upper-bound true ratios. *)

open Psched_workload

val cmax : m:int -> Job.t list -> float
(** Off-line makespan lower bound on [m] processors:
    max(critical path, area) =
    max(max_j fastest-time_j, sum_j minwork_j / m),
    where allocations are capped at [m].  With release dates the bound
    also includes max_j (r_j + fastest-time_j). *)

val sum_weighted_completion : m:int -> Job.t list -> float
(** Lower bound on sum w_i C_i: the maximum of
    - the squashed-area bound: preemptive WSPT on a single machine that
      is [m] times faster, with job areas = minimal works;
    - the trivial bound sum_j w_j (r_j + fastest-time_j). *)

val sum_completion : m:int -> Job.t list -> float
(** Unweighted specialisation of {!sum_weighted_completion}. *)

val fastest_time : m:int -> Job.t -> float
(** Fastest possible execution time of a job using at most [m]
    processors. *)

val min_work : m:int -> Job.t -> float
(** Minimal work of a job over allocations of at most [m] processors. *)
