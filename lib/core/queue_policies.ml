open Psched_workload
open Psched_sim

type policy = Fcfs | Sjf | Wsjf | Max_stretch_first

let all =
  [
    ("FCFS", Fcfs);
    ("SJF", Sjf);
    ("WSJF", Wsjf);
    ("max-stretch-first", Max_stretch_first);
  ]

let priority policy ~now ((job : Job.t), procs) =
  let p = Job.time_on job procs in
  match policy with
  | Fcfs -> (job.release, float_of_int job.id)
  | Sjf -> (p, float_of_int job.id)
  | Wsjf -> (p /. job.weight, float_of_int job.id)
  | Max_stretch_first ->
    (* Highest (wait + run) / run first: negate for the sort. *)
    (-.((now -. job.release +. p) /. p), float_of_int job.id)

(* Precondition: every allocation is at most [m] processors wide; the
   {!Schedulers} adapter rejects wider jobs with a typed [Too_wide]
   error before calling. *)
let schedule policy ~m allocated =
  let module H = Psched_util.Heap in
  let events = H.create ~cmp:compare in
  List.iter (fun ((j : Job.t), _) -> H.add events j.release) allocated;
  let pending = ref allocated in
  let queue = ref [] in
  let free = ref m in
  let entries = ref [] in
  let eps = 1e-9 in
  let step now =
    let arrived, still =
      List.partition (fun ((j : Job.t), _) -> j.release <= now +. eps) !pending
    in
    pending := still;
    queue := !queue @ arrived;
    let ordered = List.sort (fun a b -> compare (priority policy ~now a) (priority policy ~now b)) !queue in
    let kept =
      List.filter
        (fun ((job : Job.t), procs) ->
          if procs <= !free then begin
            free := !free - procs;
            let e = Schedule.entry ~job ~start:now ~procs () in
            entries := e :: !entries;
            H.add events (Schedule.completion e);
            false
          end
          else true)
        ordered
    in
    queue := kept
  in
  let last = ref neg_infinity in
  let completions_at now =
    (* Processors freed by entries finishing at [now]. *)
    List.iter
      (fun (e : Schedule.entry) ->
        if Float.abs (Schedule.completion e -. now) <= eps then free := !free + e.Schedule.procs)
      !entries
  in
  let rec loop () =
    match H.pop events with
    | None -> ()
    | Some t ->
      if t > !last +. eps then begin
        last := t;
        completions_at t;
        step t
      end;
      loop ()
  in
  loop ();
  assert (!queue = [] && !pending = []);
  Schedule.make ~m !entries
