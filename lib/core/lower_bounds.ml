open Psched_workload

let fastest_time ~m job =
  let k = min m (Job.max_procs job) in
  if k < Job.min_procs job then infinity else Job.time_on job k

let min_work ~m job =
  let lo = Job.min_procs job and hi = min m (Job.max_procs job) in
  let best = ref infinity in
  for k = lo to hi do
    let w = Job.work_on job k in
    if w < !best then best := w
  done;
  (* Divisible loads have unbounded max_procs but constant work. *)
  if Float.is_finite !best then !best
  else match job.Job.shape with Job.Divisible { work } -> work | _ -> infinity

let cmax ~m jobs =
  let critical =
    List.fold_left
      (fun acc (j : Job.t) -> Float.max acc (j.release +. fastest_time ~m j))
      0.0 jobs
  in
  let area = List.fold_left (fun acc j -> acc +. min_work ~m j) 0.0 jobs /. float_of_int m in
  Float.max critical area

let sum_weighted_completion ~m jobs =
  (* Squashed-area bound: relax to one machine m times faster on which
     each job needs minwork/m units; with equal release dates the
     preemptive optimum is non-preemptive WSPT.  Release dates are
     handled conservatively by ignoring them in the WSPT term and
     folding them into the trivial per-job term. *)
  let areas =
    List.map (fun (j : Job.t) -> (j, min_work ~m j /. float_of_int m)) jobs
  in
  let by_smith =
    List.sort (fun ((a : Job.t), pa) ((b : Job.t), pb) -> compare (pa /. a.weight) (pb /. b.weight)) areas
  in
  let _, squashed =
    List.fold_left
      (fun (clock, acc) ((j : Job.t), p) ->
        let clock = clock +. p in
        (clock, acc +. (j.weight *. clock)))
      (0.0, 0.0) by_smith
  in
  let trivial =
    List.fold_left
      (fun acc (j : Job.t) -> acc +. (j.weight *. (j.release +. fastest_time ~m j)))
      0.0 jobs
  in
  Float.max squashed trivial

let sum_completion ~m jobs =
  sum_weighted_completion ~m (List.map (fun (j : Job.t) -> { j with weight = 1.0 }) jobs)
