open Psched_workload
open Psched_sim
module Obs = Psched_obs.Obs

type offline = m:int -> Job.t list -> Psched_sim.Schedule.t

(* Shift every entry of a schedule by [delta]. *)
let shift delta (s : Schedule.t) =
  { s with Schedule.entries =
      List.map (fun (e : Schedule.entry) -> { e with Schedule.start = e.start +. delta })
        s.Schedule.entries }

let run ?(obs = Obs.null) ~offline ~m jobs =
  let remaining = ref (List.sort (fun (a : Job.t) b -> compare a.release b.release) jobs) in
  let batches = ref [] in
  let entries = ref [] in
  let clock = ref 0.0 in
  if Obs.enabled obs then Obs.set_clock obs (fun () -> !clock);
  Obs.span obs "batch" @@ fun () ->
  while !remaining <> [] do
    let ready, later = List.partition (fun (j : Job.t) -> j.release <= !clock) !remaining in
    match ready with
    | [] ->
      (* Idle until the next release. *)
      (match later with
      | (j : Job.t) :: _ -> clock := j.release
      | [] -> assert false)
    | batch ->
      remaining := later;
      (* The off-line algorithm sees the batch as released at 0. *)
      let zeroed = List.map (fun (j : Job.t) -> { j with release = 0.0 }) batch in
      let sched =
        Obs.span obs "batch.round" @@ fun () -> shift !clock (offline ~m zeroed)
      in
      if Obs.enabled obs then begin
        Obs.batch_flush obs ~start:!clock ~jobs:(List.length batch) ~deadline:None;
        List.iter
          (fun (j : Job.t) -> Obs.prov_choice obs ~job:j.id ~chosen:"batch")
          batch;
        Obs.Counter.incr obs "batch/flushes";
        Obs.Counter.add obs "batch/jobs" (float_of_int (List.length batch))
      end;
      batches := (!clock, batch) :: !batches;
      entries := sched.Schedule.entries @ !entries;
      let finish =
        List.fold_left
          (fun acc e -> Float.max acc (Schedule.completion e))
          !clock sched.Schedule.entries
      in
      clock := finish
  done;
  (List.rev !batches, Schedule.make ~m !entries)

let schedule ?obs ~offline ~m jobs = snd (run ?obs ~offline ~m jobs)

let with_mrt ?obs ?epsilon ~m jobs =
  schedule ?obs ~offline:(fun ~m js -> Mrt.schedule ?obs ?epsilon ~m js) ~m jobs

let batches ~offline ~m jobs = fst (run ~offline ~m jobs)
