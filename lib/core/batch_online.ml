open Psched_workload
open Psched_sim

type offline = m:int -> Job.t list -> Psched_sim.Schedule.t

(* Shift every entry of a schedule by [delta]. *)
let shift delta (s : Schedule.t) =
  { s with Schedule.entries =
      List.map (fun (e : Schedule.entry) -> { e with Schedule.start = e.start +. delta })
        s.Schedule.entries }

let run ~offline ~m jobs =
  let remaining = ref (List.sort (fun (a : Job.t) b -> compare a.release b.release) jobs) in
  let batches = ref [] in
  let entries = ref [] in
  let clock = ref 0.0 in
  while !remaining <> [] do
    let ready, later = List.partition (fun (j : Job.t) -> j.release <= !clock) !remaining in
    match ready with
    | [] ->
      (* Idle until the next release. *)
      (match later with
      | (j : Job.t) :: _ -> clock := j.release
      | [] -> assert false)
    | batch ->
      remaining := later;
      (* The off-line algorithm sees the batch as released at 0. *)
      let zeroed = List.map (fun (j : Job.t) -> { j with release = 0.0 }) batch in
      let sched = shift !clock (offline ~m zeroed) in
      batches := (!clock, batch) :: !batches;
      entries := sched.Schedule.entries @ !entries;
      let finish =
        List.fold_left
          (fun acc e -> Float.max acc (Schedule.completion e))
          !clock sched.Schedule.entries
      in
      clock := finish
  done;
  (List.rev !batches, Schedule.make ~m !entries)

let schedule ~offline ~m jobs = snd (run ~offline ~m jobs)

let with_mrt ?epsilon ~m jobs =
  schedule ~offline:(fun ~m js -> Mrt.schedule ?epsilon ~m js) ~m jobs

let batches ~offline ~m jobs = fst (run ~offline ~m jobs)
