(** The three strategies of §5.1 for scheduling a mix of rigid and
    moldable jobs on one cluster.

    1. {e Separate}: "separate rigid and moldable jobs and schedule one
       category after the other" — moldable jobs via the MRT off-line
       algorithm, then rigid jobs FCFS behind them (or the converse).
    2. {e A-priori allocation}: "calculate a-priori an allocation for
       the moldable jobs, and then apply a rigid scheduling algorithm
       on the resulting rigid jobs" — allocation by
       {!Moldable_alloc.work_bounded}, then conservative backfilling.
    3. {e First-fit batches}: "modify the bi-criteria algorithm in
       order to schedule each rigid job in the first batch in which it
       fits" — {!Bicriteria.schedule} natively handles both kinds. *)

open Psched_workload

type strategy = Separate of { rigid_first : bool } | Apriori of { delta : float } | First_fit_batch

val schedule : strategy -> m:int -> Job.t list -> Psched_sim.Schedule.t
(** All release dates are expected to be 0 (the §5.1 discussion is
    off-line); release dates are still honoured via the underlying
    algorithms. *)

val all_strategies : (string * strategy) list
(** Named strategies for benches. *)
