(** Greedy placement of allocated jobs on an availability profile.

    The common engine behind list scheduling, conservative backfilling
    and batch construction: jobs whose allocation is already decided
    are placed, in list order, at the earliest date compatible with
    their release and with capacity.  Because each job is placed at
    the earliest feasible date given the jobs placed before it, FCFS
    order gives exactly conservative backfilling. *)

open Psched_workload

type allocated = Job.t * int
(** A job together with its decided processor count. *)

val allocate_rigid : Job.t -> allocated
(** Identity for rigid jobs; moldable jobs get their minimal
    allocation; @raise Invalid_argument on divisible jobs (those go
    through the DLT layer). *)

val place :
  ?obs:Psched_obs.Obs.t ->
  ?profile:Psched_sim.Profile.t ->
  ?earliest:float ->
  m:int ->
  allocated list ->
  Psched_sim.Schedule.entry list
(** Place jobs in list order on [profile] (fresh [m]-processor profile
    if omitted; the profile is mutated so callers can chain batches).
    [earliest] floors every start date (default 0).  Each job starts at
    the earliest feasible date >= max(release, earliest).  With [obs],
    every placement emits a [prov.consider] decision-provenance event.
    @raise Invalid_argument if a job requires more than [m] processors. *)

val list_schedule :
  ?obs:Psched_obs.Obs.t ->
  ?order:(allocated -> allocated -> int) ->
  ?reservations:Psched_platform.Reservation.t list ->
  m:int ->
  allocated list ->
  Psched_sim.Schedule.t
(** List scheduling: sort by [order] (default: release date, then id —
    i.e. FCFS / conservative backfilling) and {!place} on a profile
    from which [reservations] have been subtracted. *)

val largest_area_first : allocated -> allocated -> int
(** Priority: decreasing procs x time, the classic LPT-like order. *)

val longest_time_first : allocated -> allocated -> int
