open Psched_workload
open Psched_sim
module Obs = Psched_obs.Obs

type batch = { start : float; deadline : float; jobs : Job.t list }

(* Dual procedure: schedule a max-weight greedy subset of [jobs] in
   [start, start + rho*d); returns (entries, scheduled, rejected). *)
let dual ~m ~rho ~d ~start jobs =
  let density (j : Job.t) = j.weight /. Float.max (Lower_bounds.min_work ~m j) 1e-12 in
  let candidates =
    List.sort (fun a b -> compare (density b, a.Job.id) (density a, b.Job.id)) jobs
  in
  let profile = Profile.create m in
  let rec loop entries scheduled rejected = function
    | [] -> (entries, scheduled, rejected)
    | job :: rest -> (
      match Mrt.canonical_alloc ~m ~deadline:d job with
      | None -> loop entries scheduled (job :: rejected) rest
      | Some procs -> (
        let duration = Job.time_on job procs in
        match Profile.find_start profile ~earliest:0.0 ~duration ~procs with
        | s when s +. duration <= (rho *. d) +. 1e-9 ->
          Profile.reserve profile ~start:s ~duration ~procs;
          let e = Schedule.entry ~job ~start:(start +. s) ~procs () in
          loop (e :: entries) (job :: scheduled) rejected rest
        | _ -> loop entries scheduled (job :: rejected) rest
        | exception Not_found -> loop entries scheduled (job :: rejected) rest))
  in
  loop [] [] [] candidates

let run ?(obs = Obs.null) ?(rho = 1.5) ?d0 ~m jobs =
  List.iter
    (fun (j : Job.t) ->
      if Job.min_procs j > m then
        invalid_arg
          (Printf.sprintf "Bicriteria: job %d needs more than %d processors" j.Job.id m))
    jobs;
  match jobs with
  | [] -> ([], Schedule.make ~m [])
  | _ ->
    let d0 =
      match d0 with
      | Some d -> d
      | None ->
        List.fold_left (fun acc j -> Float.min acc (Lower_bounds.fastest_time ~m j)) infinity jobs
    in
    let remaining = ref jobs in
    let clock = ref 0.0 in
    if Obs.enabled obs then Obs.set_clock obs (fun () -> !clock);
    let d = ref (Float.max d0 1e-9) in
    let batches = ref [] in
    let entries = ref [] in
    while !remaining <> [] do
      let available, later = List.partition (fun (j : Job.t) -> j.release <= !clock) !remaining in
      match available with
      | [] ->
        (* Idle until the next release; the deadline keeps its value so
           freshly released small jobs are not over-delayed. *)
        (match later with (j : Job.t) :: _ -> clock := Float.max !clock j.release | [] -> ())
      | _ ->
        let batch_entries, scheduled, rejected = dual ~m ~rho ~d:!d ~start:!clock available in
        if Obs.enabled obs then begin
          Obs.batch_flush obs ~start:!clock ~jobs:(List.length scheduled) ~deadline:(Some !d);
          Obs.Counter.incr obs "bicriteria/batches";
          Obs.Counter.add obs "bicriteria/scheduled" (float_of_int (List.length scheduled));
          Obs.Counter.add obs "bicriteria/rejected" (float_of_int (List.length rejected))
        end;
        if scheduled <> [] then begin
          batches := { start = !clock; deadline = !d; jobs = scheduled } :: !batches;
          entries := batch_entries @ !entries;
          (* Advance to the last completion of the batch (compacted
             variant; the analysed variant advances by rho*d). *)
          let finish =
            List.fold_left (fun acc e -> Float.max acc (Schedule.completion e)) !clock
              batch_entries
          in
          clock := finish
        end;
        remaining := rejected @ later;
        d := 2.0 *. !d
    done;
    (List.rev !batches, Schedule.make ~m !entries)

let schedule ?obs ?rho ?d0 ~m jobs = snd (run ?obs ?rho ?d0 ~m jobs)
let batches ?rho ?d0 ~m jobs = fst (run ?rho ?d0 ~m jobs)
