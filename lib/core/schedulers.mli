(** The policy registry: every scheduler in [lib/core] adapted to the
    unified {!Scheduler_intf.run} shape and selectable by name.

    [psched], [bench], the grid layers and the experiments pick
    policies from this table instead of pattern-matching modules:

    {[
      let ctx = Scheduler_intf.ctx ~m:64 ~obs () in
      match Schedulers.run "easy" ctx jobs with
      | Ok { schedule; stats; trace } -> ...
      | Error e -> print_endline (Scheduler_intf.error_to_string e)
    ]}

    Rigid-only policies (EASY, conservative, queue disciplines, EDD,
    strip packing, SMART) allocate moldable jobs through
    [ctx.alloc] first and reject divisible loads with
    {!Scheduler_intf.Unsupported_shape}.  Off-line-only policies (MRT,
    SMART, NFDH/FFDH, rigid-separate) return
    {!Scheduler_intf.Needs_zero_releases} when [ctx.releases = Honour]
    meets a positive release date, and strip release dates under
    [Zero].  No adapter raises: [Invalid_argument]/[Failure] escapes
    come back as {!Scheduler_intf.Failure}. *)

open Psched_workload

val registry : (module Scheduler_intf.S) list
(** All policies, in presentation order. *)

val names : string list
(** Registry keys, e.g. ["mrt"; "bicriteria"; ...; "easy"; "fcfs"]. *)

val docs : (string * string) list
(** [(name, one-line description)] for each policy. *)

val find : string -> (module Scheduler_intf.S) option

val run :
  string ->
  Scheduler_intf.ctx ->
  Job.t list ->
  (Scheduler_intf.outcome, Scheduler_intf.error) result
(** [run name ctx jobs] looks the policy up and runs it; an unknown
    name is a {!Scheduler_intf.Failure} error, not an exception. *)
