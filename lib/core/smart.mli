(** SMART shelf scheduling for rigid parallel tasks and weighted
    completion time (§4.3; Schwiegelshohn, Ludwig, Wolf, Turek, Yu).

    Tasks are rounded up to shelves whose heights are powers of two;
    shelves are filled first-fit and then sequenced like single-machine
    jobs by Smith's rule (shelf weight / shelf height), which is
    optimal for the induced batch-ordering problem.  Performance ratio
    8 for sum C_i, 8.53 for sum w_i C_i. *)

open Psched_workload

val shelf_class : base:float -> float -> int
(** [shelf_class ~base p] is the smallest c with base·2^c >= p. *)

val schedule :
  ?obs:Psched_obs.Obs.t -> ?base:float -> m:int -> (Job.t * int) list -> Psched_sim.Schedule.t
(** Schedule rigid (job, procs) tasks.  [base] (default: the smallest
    task time) anchors the power-of-two shelf heights.  With an
    enabled [obs], every shelf emits a ["smart.shelf"] event (class,
    height, used width, task count).  All release dates must be 0;
    @raise Invalid_argument otherwise, or if a task is wider than [m].
    The registry adapter ({!Schedulers}) turns the release-date case
    into a typed [Error] instead of raising. *)

val schedule_rigid_jobs :
  ?obs:Psched_obs.Obs.t -> ?base:float -> m:int -> Job.t list -> Psched_sim.Schedule.t
(** Convenience wrapper using each job's rigid allocation. *)
