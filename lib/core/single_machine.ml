open Psched_workload

let spt_order jobs =
  List.sort (fun (a : Job.t) (b : Job.t) -> compare (Job.seq_time a, a.id) (Job.seq_time b, b.id)) jobs

let wspt_order jobs =
  let ratio (j : Job.t) = Job.seq_time j /. j.weight in
  List.sort (fun a b -> compare (ratio a, a.Job.id) (ratio b, b.Job.id)) jobs

let schedule jobs =
  let ordered = wspt_order jobs in
  let _, entries =
    List.fold_left
      (fun (clock, acc) (j : Job.t) ->
        let start = Float.max clock j.release in
        let e = Psched_sim.Schedule.entry ~job:j ~start ~procs:(Job.min_procs j) () in
        (Psched_sim.Schedule.completion e, e :: acc))
      (0.0, []) ordered
  in
  Psched_sim.Schedule.make ~m:1 (List.rev entries)

let sum_weighted_completion_of_order jobs =
  let _, total =
    List.fold_left
      (fun (clock, acc) (j : Job.t) ->
        let clock = clock +. Job.seq_time j in
        (clock, acc +. (j.weight *. clock)))
      (0.0, 0.0) jobs
  in
  total

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let brute_force_best jobs =
  match jobs with
  | [] -> 0.0
  | _ ->
    List.fold_left
      (fun best order -> Float.min best (sum_weighted_completion_of_order order))
      infinity (permutations jobs)
