open Psched_workload
module I = Scheduler_intf

let ( let* ) = Result.bind

let zero_releases jobs = List.map (fun (j : Job.t) -> { j with Job.release = 0.0 }) jobs

(* Every adapter starts with the same width check so callers get a
   typed [Too_wide] instead of a policy-specific [Invalid_argument]. *)
let width_ok ~policy ~m jobs =
  match
    List.find_map
      (fun (j : Job.t) ->
        let need = Job.min_procs j in
        if need > m then Some (I.Too_wide { policy; job = j.id; procs = need; m }) else None)
      jobs
  with
  | Some e -> Error e
  | None -> Ok ()

(* Multi-resource policies additionally require every job's minimal
   request vector to fit the platform capacity; the first overflowing
   component becomes a typed [Over_resource].  Cores are already
   covered by [width_ok], so only non-core components can trip here. *)
let resource_ok ~policy ~cap jobs =
  match
    List.find_map
      (fun (j : Job.t) ->
        match Psched_platform.Resource.first_overflow (Job.min_request j) ~within:cap with
        | Some (resource, need, capacity) ->
          Some (I.Over_resource { policy; job = j.Job.id; resource; need; capacity })
        | None -> None)
      jobs
  with
  | Some e -> Error e
  | None -> Ok ()

(* Off-line-only policies: positive release dates are a typed error
   under [Honour], stripped under [Zero]. *)
let offline_view ~policy (ctx : I.ctx) jobs =
  match ctx.releases with
  | I.Zero -> Ok (zero_releases jobs)
  | I.Honour -> (
    match List.find_opt (fun (j : Job.t) -> j.release > 0.0) jobs with
    | Some j -> Error (I.Needs_zero_releases { policy; job = j.Job.id; release = j.Job.release })
    | None -> Ok jobs)

(* Policies that honour release dates natively still obey [Zero]. *)
let online_view (ctx : I.ctx) jobs =
  match ctx.releases with I.Zero -> zero_releases jobs | I.Honour -> jobs

let chooser (ctx : I.ctx) =
  match ctx.alloc with
  | I.Alloc_work_bounded delta -> Moldable_alloc.work_bounded ~m:ctx.m ~delta
  | I.Alloc_fastest -> Moldable_alloc.fastest ~m:ctx.m
  | I.Alloc_thriftiest -> Moldable_alloc.thriftiest ~m:ctx.m
  | I.Alloc_min -> Job.min_procs

(* Rigid-only policies: turn moldable jobs rigid through [ctx.alloc];
   divisible loads belong to the DLT layer and are rejected. *)
let rigid_view ~policy (ctx : I.ctx) jobs =
  match
    List.find_opt
      (fun (j : Job.t) -> match j.shape with Job.Divisible _ -> true | _ -> false)
      jobs
  with
  | Some j ->
    Error
      (I.Unsupported_shape
         { policy; job = j.Job.id; reason = "divisible load (use the DLT layer)" })
  | None -> Ok (Moldable_alloc.allocate (chooser ctx) jobs)

let guard ~policy f =
  try f ()
  with
  | Invalid_argument reason | Stdlib.Failure reason -> Error (I.Failure { policy; reason })

let outcome (ctx : I.ctx) jobs schedule = Ok (I.outcome_of_schedule ~ctx ~jobs schedule)

(* Adapter shapes.  [moldable_offline]/[moldable_online] feed jobs
   straight to the policy; [rigid_*] allocate first. *)

let moldable_offline ~policy sched : I.run =
 fun ctx jobs ->
  guard ~policy @@ fun () ->
  let* () = width_ok ~policy ~m:ctx.m jobs in
  let* jobs' = offline_view ~policy ctx jobs in
  outcome ctx jobs (sched ctx jobs')

let moldable_online ~policy sched : I.run =
 fun ctx jobs ->
  guard ~policy @@ fun () ->
  let* () = width_ok ~policy ~m:ctx.m jobs in
  outcome ctx jobs (sched ctx (online_view ctx jobs))

let rigid_offline ~policy sched : I.run =
 fun ctx jobs ->
  guard ~policy @@ fun () ->
  let* () = width_ok ~policy ~m:ctx.m jobs in
  let* jobs' = offline_view ~policy ctx jobs in
  let* tasks = rigid_view ~policy ctx jobs' in
  outcome ctx jobs (sched ctx tasks)

let rigid_online ~policy sched : I.run =
 fun ctx jobs ->
  guard ~policy @@ fun () ->
  let* () = width_ok ~policy ~m:ctx.m jobs in
  let* tasks = rigid_view ~policy ctx (online_view ctx jobs) in
  outcome ctx jobs (sched ctx tasks)

(* [rigid_online] plus the vector capacity precheck, for policies that
   schedule against [ctx.cap] instead of the scalar [ctx.m]. *)
let rigid_online_mr ~policy sched : I.run =
 fun ctx jobs ->
  guard ~policy @@ fun () ->
  let* () = width_ok ~policy ~m:ctx.m jobs in
  let* () = resource_ok ~policy ~cap:ctx.cap jobs in
  let* tasks = rigid_view ~policy ctx (online_view ctx jobs) in
  outcome ctx jobs (sched ctx tasks)

let make name doc run : (module I.S) =
  (module struct
    let name = name
    let doc = doc
    let run = run
  end)

let delta_of (ctx : I.ctx) =
  match ctx.alloc with I.Alloc_work_bounded d -> d | _ -> 0.25

let registry : (module I.S) list =
  [
    make "mrt" "MRT (3/2+eps) dual-approximation for moldable tasks, off-line (sec. 4.1)"
      (moldable_offline ~policy:"mrt" (fun ctx jobs ->
           Mrt.schedule ~obs:ctx.obs ~epsilon:ctx.epsilon ~m:ctx.m jobs));
    make "bicriteria" "doubling-deadline batches for makespan + sum wC (sec. 4.4)"
      (moldable_online ~policy:"bicriteria" (fun ctx jobs ->
           Bicriteria.schedule ~obs:ctx.obs ~m:ctx.m jobs));
    make "batch-online" "Shmoys-Wein-Williamson batches over MRT, (3+eps)-competitive (sec. 4.2)"
      (moldable_online ~policy:"batch-online" (fun ctx jobs ->
           Batch_online.with_mrt ~obs:ctx.obs ~epsilon:ctx.epsilon ~m:ctx.m jobs));
    make "smart" "SMART power-of-two shelves for sum wC, off-line rigid (sec. 4.3)"
      (rigid_offline ~policy:"smart" (fun ctx tasks ->
           Smart.schedule ~obs:ctx.obs ~m:ctx.m tasks));
    make "easy" "EASY aggressive backfilling around the queue head's reservation"
      (rigid_online ~policy:"easy" (fun ctx tasks ->
           Backfilling.easy ~obs:ctx.obs ~reservations:ctx.reservations ~m:ctx.m tasks));
    make "list-mr" "multi-resource list scheduling: start only when cores, memory and bandwidth fit"
      (rigid_online_mr ~policy:"list-mr" (fun ctx tasks ->
           Multires.list_schedule ~reservations:ctx.reservations ~cap:ctx.cap tasks));
    make "easy-mr" "multi-resource EASY backfilling: the head reserves its full resource vector"
      (rigid_online_mr ~policy:"easy-mr" (fun ctx tasks ->
           Multires.easy ~obs:ctx.obs ~reservations:ctx.reservations ~cap:ctx.cap tasks));
    make "conservative" "conservative backfilling: every queued job holds a reservation"
      (rigid_online ~policy:"conservative" (fun ctx tasks ->
           Backfilling.conservative ~obs:ctx.obs ~reservations:ctx.reservations ~m:ctx.m tasks));
    make "fcfs" "first-come first-served queue order, list placement"
      (rigid_online ~policy:"fcfs" (fun ctx tasks ->
           Queue_policies.schedule Queue_policies.Fcfs ~m:ctx.m tasks));
    make "sjf" "shortest job first queue order"
      (rigid_online ~policy:"sjf" (fun ctx tasks ->
           Queue_policies.schedule Queue_policies.Sjf ~m:ctx.m tasks));
    make "wsjf" "weighted shortest job first (Smith ratio) queue order"
      (rigid_online ~policy:"wsjf" (fun ctx tasks ->
           Queue_policies.schedule Queue_policies.Wsjf ~m:ctx.m tasks));
    make "max-stretch-first" "serve the job with the worst pending stretch first"
      (rigid_online ~policy:"max-stretch-first" (fun ctx tasks ->
           Queue_policies.schedule Queue_policies.Max_stretch_first ~m:ctx.m tasks));
    make "edd" "earliest due date order for tardiness criteria"
      (rigid_online ~policy:"edd" (fun ctx tasks -> Due_date.edd ~m:ctx.m tasks));
    make "edd-admission" "EDD with admission control: only due-date-safe jobs are kept"
      (rigid_online ~policy:"edd-admission" (fun ctx tasks ->
           (Due_date.with_admission ~m:ctx.m tasks).Due_date.schedule));
    make "nfdh" "next-fit decreasing height strip packing, off-line rigid"
      (rigid_offline ~policy:"nfdh" (fun ctx tasks -> Strip_packing.nfdh ~m:ctx.m tasks));
    make "ffdh" "first-fit decreasing height strip packing, off-line rigid"
      (rigid_offline ~policy:"ffdh" (fun ctx tasks -> Strip_packing.ffdh ~m:ctx.m tasks));
    make "wspt" "weighted shortest processing time on a single machine (ctx.m ignored)"
      (fun ctx jobs ->
        let policy = "wspt" in
        guard ~policy @@ fun () ->
        (* The single machine has one processor: a job that cannot
           shrink to 1 is too wide for it, whatever ctx.m says. *)
        match List.find_opt (fun (j : Job.t) -> Job.min_procs j > 1) jobs with
        | Some j -> Error (I.Too_wide { policy; job = j.Job.id; procs = Job.min_procs j; m = 1 })
        | None -> outcome ctx jobs (Single_machine.schedule (online_view ctx jobs)));
    make "rigid-separate" "rigid/moldable mix: pack each class separately, rigid first (sec. 4.5)"
      (moldable_offline ~policy:"rigid-separate" (fun ctx jobs ->
           Rigid_mix.schedule (Rigid_mix.Separate { rigid_first = true }) ~m:ctx.m jobs));
    make "rigid-apriori"
      "rigid/moldable mix: a-priori work-bounded allocation, then list scheduling"
      (moldable_online ~policy:"rigid-apriori" (fun ctx jobs ->
           Rigid_mix.schedule (Rigid_mix.Apriori { delta = delta_of ctx }) ~m:ctx.m jobs));
    make "rigid-firstfit" "rigid/moldable mix: first-fit doubling batches"
      (moldable_online ~policy:"rigid-firstfit" (fun ctx jobs ->
           Rigid_mix.schedule Rigid_mix.First_fit_batch ~m:ctx.m jobs));
    make "reservation-batches" "batch windows between advance reservations"
      (fun ctx jobs ->
        let policy = "reservation-batches" in
        guard ~policy @@ fun () ->
        if ctx.reservations = [] then Error (I.Needs_reservations { policy })
        else
          let* () = width_ok ~policy ~m:ctx.m jobs in
          outcome ctx jobs
            (Reservation_batches.schedule ~m:ctx.m ~reservations:ctx.reservations
               (online_view ctx jobs)));
  ]

let names = List.map (fun (module S : I.S) -> S.name) registry
let docs = List.map (fun (module S : I.S) -> (S.name, S.doc)) registry

let find name =
  List.find_opt (fun (module S : I.S) -> String.equal S.name name) registry

let run name ctx jobs =
  match find name with
  | Some (module S : I.S) -> S.run ctx jobs
  | None ->
    Error
      (I.Failure
         { policy = name; reason = "unknown policy (see `psched policies` for the registry)" })
