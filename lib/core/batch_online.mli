(** On-line batch scheduling (§4.2): the Shmoys–Wein–Williamson
    transformation.

    Jobs arrive over time (clairvoyant: characteristics known at
    release).  Jobs are gathered into batches: all jobs released while
    batch k executes wait and form batch k+1, scheduled with an
    off-line algorithm when batch k completes.  If the off-line
    algorithm has performance ratio rho (without release dates), the
    batch algorithm has ratio 2·rho with release dates.

    Using the MRT (3/2 + eps) off-line algorithm this yields the
    (3 + eps)-competitive moldable algorithm of §4.2. *)

open Psched_workload

type offline = m:int -> Job.t list -> Psched_sim.Schedule.t
(** An off-line makespan algorithm for jobs available at time 0; the
    schedule it returns is shifted to the batch start date. *)

val schedule :
  ?obs:Psched_obs.Obs.t -> offline:offline -> m:int -> Job.t list -> Psched_sim.Schedule.t
(** Run the batch transformation over the full job stream.  Jobs must
    have finite feasible allocations on [m] processors.  With an
    enabled [obs], every batch start emits a ["batch.flush"] event. *)

val with_mrt :
  ?obs:Psched_obs.Obs.t -> ?epsilon:float -> m:int -> Job.t list -> Psched_sim.Schedule.t
(** The paper's 3 + eps algorithm: batches solved by {!Mrt.schedule}
    (which also receives [obs], so MRT guess events interleave with
    the batch flushes). *)

val batches : offline:offline -> m:int -> Job.t list -> (float * Job.t list) list
(** The (start date, batch contents) decomposition, for inspection and
    tests. *)
