open Psched_workload
open Psched_sim
module Obs = Psched_obs.Obs

let canonical_alloc ~m ~deadline (job : Job.t) =
  Alloc_cache.canonical (Alloc_cache.of_job ~m job) ~deadline

(* Same bound as [Lower_bounds.cmax], read off the allocation tables
   instead of re-querying [Job.time_on] for every width. *)
let cmax_cached ~m caches =
  let critical = ref 0.0 and area = ref 0.0 in
  Array.iter
    (fun c ->
      let j = Alloc_cache.job c in
      let fastest =
        if Alloc_cache.feasible c then Alloc_cache.time_on c (Alloc_cache.max_procs c)
        else infinity
      in
      critical := Float.max !critical (j.Job.release +. fastest);
      let best = Alloc_cache.min_work c in
      let best =
        if Float.is_finite best then best
        else match j.Job.shape with Job.Divisible { work } -> work | _ -> infinity
      in
      area := !area +. best)
    caches;
  Float.max !critical (!area /. float_of_int m)

type verdict = Rejected | Accepted of Schedule.t

module Make (P : Profile_intf.S) = struct
  (* Knapsack: each task goes to shelf 1 (width gamma1, work w1,
     bounded total width m) or shelf 2 (no width constraint, work w2);
     minimise total work.  Returns the assignment minimising work, or
     None if the tasks forced into shelf 1 already overflow it.

     Most tasks never reach the DP.  A task without a shelf-2
     allocation is forced into shelf 1; a task whose short allocation
     costs no extra work can always be exchanged into shelf 2 (it frees
     width and work only drops); a task wider than the leftover shelf
     can never fit.  What remains is a plain 0/1 knapsack — pick the
     subset of savings w2 - w1 > 0 whose widths fit the residual
     capacity — solved with a single in-place float row plus one choice
     bit per (item, width) state for recovering the assignment, instead
     of the former n+1 full-width float layers over every task. *)
  let knapsack ~m tasks =
    let n = Array.length tasks in
    let in_shelf1 = Array.make n false in
    let base = ref 0.0 in
    (* Work of the forced choices accumulates in [base]. *)
    let q0 = ref 0 in
    let pool = ref [] in
    Array.iteri
      (fun i (_, g1, w1, short) ->
        match short with
        | None ->
          in_shelf1.(i) <- true;
          q0 := !q0 + g1;
          base := !base +. w1
        | Some (_, w2) ->
          if w2 <= w1 then base := !base +. w2
          else pool := (i, g1, w1, w2) :: !pool)
      tasks;
    if !q0 > m then None
    else begin
      let cap = m - !q0 in
      let wide, small = List.partition (fun (_, g1, _, _) -> g1 > cap) !pool in
      List.iter (fun (_, _, _, w2) -> base := !base +. w2) wide;
      let items = Array.of_list small in
      let k = Array.length items in
      let sum_g = Array.fold_left (fun acc (_, g, _, _) -> acc + g) 0 items in
      if sum_g <= cap then begin
        (* Everything fits side by side: all savings are collected. *)
        Array.iter
          (fun (i, _, w1, _) ->
            in_shelf1.(i) <- true;
            base := !base +. w1)
          items;
        Some (!base, in_shelf1)
      end
      else begin
        (* dp.(q) = best saving within width q; bit (i, q) records that
           item i improved cell q, which is exactly the information the
           walk-back needs. *)
        let dp = Array.make (cap + 1) 0.0 in
        let row = cap + 1 in
        let choice = Bytes.make (((k * row) + 7) / 8) '\000' in
        let set_bit i q =
          let b = (i * row) + q in
          Bytes.unsafe_set choice (b lsr 3)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get choice (b lsr 3)) lor (1 lsl (b land 7))))
        in
        let get_bit i q =
          let b = (i * row) + q in
          Char.code (Bytes.unsafe_get choice (b lsr 3)) land (1 lsl (b land 7)) <> 0
        in
        for i = 0 to k - 1 do
          let _, g, w1, w2 = items.(i) in
          let v = w2 -. w1 in
          for q = cap downto g do
            let cand = Array.unsafe_get dp (q - g) +. v in
            if cand > Array.unsafe_get dp q then begin
              Array.unsafe_set dp q cand;
              set_bit i q
            end
          done
        done;
        let q = ref cap in
        for i = k - 1 downto 0 do
          let idx, g, w1, w2 = items.(i) in
          if get_bit i !q then begin
            in_shelf1.(idx) <- true;
            base := !base +. w1;
            q := !q - g
          end
          else base := !base +. w2
        done;
        Some (!base, in_shelf1)
      end
    end

  (* A lambda guess is summarised by the canonical allocations it
     induces: (g1_i, g2_i) for every job.  Adjacent guesses of the dual
     binary search usually induce the *same* vector — the allocations
     only move when lambda crosses one of the jobs' execution times —
     so the knapsack optimum and the packed schedule are cached per
     distinct vector and shared across guesses.  The stored schedule is
     lambda-free (it depends only on the allocations and assignment);
     only the budget test [work <= lambda*m] is re-evaluated. *)
  type memo_entry = {
    key : int array;  (* g1_0, g2_0 (or -1), g1_1, g2_1, ... *)
    floor_w : float;  (* sum of min(w1, w2): no assignment works less *)
    mutable solved : bool;
    mutable solution : (float * bool array) option;  (* knapsack optimum *)
    mutable packed : Schedule.t option;  (* built on first acceptance *)
  }

  (* Decide a guess without building its schedule; [Some entry] means
     accepted.  The packing is deferred to [pack_entry] so the binary
     search only ever packs the guess it finally settles on. *)
  let eval_guess ?(obs = Obs.null) ~m ~lambda caches memo =
    let n = Array.length caches in
    let exception Reject in
    try
      let key = Array.make (2 * n) (-1) in
      let tasks =
        Array.mapi
          (fun i cache ->
            match Alloc_cache.canonical cache ~deadline:lambda with
            | None -> raise Reject
            | Some g1 ->
              key.(2 * i) <- g1;
              let w1 = Alloc_cache.work_on cache g1 in
              let short =
                match Alloc_cache.canonical cache ~deadline:(lambda /. 2.0) with
                | Some g2 ->
                  key.((2 * i) + 1) <- g2;
                  Some (g2, Alloc_cache.work_on cache g2)
                | None -> None
              in
              (cache, g1, w1, short))
          caches
      in
      let entry =
        match List.find_opt (fun e -> e.key = key) !memo with
        | Some e -> e
        | None ->
          let floor_w = ref 0.0 in
          Array.iter
            (fun (_, _, w1, short) ->
              match short with
              | Some (_, w2) -> floor_w := !floor_w +. Float.min w1 w2
              | None -> floor_w := !floor_w +. w1)
            tasks;
          let e = { key; floor_w = !floor_w; solved = false; solution = None; packed = None } in
          memo := e :: !memo;
          e
      in
      let budget = (lambda *. float_of_int m) +. 1e-9 in
      (* The floor already decides most rejections without touching the
         DP; the knapsack runs at most once per distinct vector, and
         only for guesses whose budget the floor cannot exclude. *)
      if entry.floor_w > budget then begin
        if Obs.enabled obs then begin
          Obs.knapsack_prune obs ~lambda ~reason:"floor";
          Obs.Counter.incr obs "mrt/knapsack/floor_pruned";
          Obs.lambda_guess obs ~lambda ~accepted:false;
          Obs.Counter.incr obs "mrt/guess/rejected"
        end;
        None
      end
      else begin
        if not entry.solved then begin
          if Obs.enabled obs then begin
            Obs.knapsack_run obs ~items:n ~cap:m;
            Obs.Counter.incr obs "mrt/knapsack/dp"
          end;
          entry.solution <- Obs.span obs "mrt.knapsack" (fun () -> knapsack ~m tasks);
          entry.solved <- true
        end
        else if Obs.enabled obs then Obs.Counter.incr obs "mrt/knapsack/memo_hit";
        let verdict =
          match entry.solution with
          | None -> None
          | Some (work, _) -> if work > budget then None else Some entry
        in
        if Obs.enabled obs then begin
          let accepted = Option.is_some verdict in
          Obs.lambda_guess obs ~lambda ~accepted;
          Obs.Counter.incr obs (if accepted then "mrt/guess/accepted" else "mrt/guess/rejected")
        end;
        verdict
      end
    with Reject ->
      if Obs.enabled obs then begin
        Obs.knapsack_prune obs ~lambda ~reason:"infeasible";
        Obs.lambda_guess obs ~lambda ~accepted:false;
        Obs.Counter.incr obs "mrt/guess/rejected"
      end;
      None

  (* Build the two-shelf schedule for an accepted entry: shelf-1 tasks
     start at 0; shelf-2 tasks are packed greedily (longest first) in
     the leftover capacity.  The allocations are read back from the
     entry's key, so no lambda is needed. *)
  let pack_entry ?(obs = Obs.null) ~m caches entry =
    match entry.packed with
    | Some s ->
      if Obs.enabled obs then Obs.Counter.incr obs "mrt/pack/memo_hit";
      s
    | None ->
      Obs.span obs "mrt.pack" @@ fun () ->
      let in_shelf1 =
        match entry.solution with
        | Some (_, a) -> a
        | None -> assert false  (* only accepted entries are packed *)
      in
      let profile = P.create m in
      let entries = ref [] in
      let shelf2 = ref [] in
      Array.iteri
        (fun i cache ->
          if in_shelf1.(i) then begin
            let g1 = entry.key.(2 * i) in
            let duration = Alloc_cache.time_on cache g1 in
            P.reserve profile ~start:0.0 ~duration ~procs:g1;
            if Obs.enabled obs then
              Obs.prov_choice obs ~job:(Alloc_cache.job cache).Job.id ~chosen:"shelf1";
            entries := Schedule.entry ~job:(Alloc_cache.job cache) ~start:0.0 ~procs:g1 () :: !entries
          end
          else begin
            (* Not in shelf 1, so the short allocation existed. *)
            if Obs.enabled obs then
              Obs.prov_choice obs ~job:(Alloc_cache.job cache).Job.id ~chosen:"shelf2";
            shelf2 := (cache, entry.key.((2 * i) + 1)) :: !shelf2
          end)
        caches;
      let by_longest (a, ka) (b, kb) =
        compare
          (Alloc_cache.time_on b kb, (Alloc_cache.job a).Job.id)
          (Alloc_cache.time_on a ka, (Alloc_cache.job b).Job.id)
      in
      let sorted2 = List.sort by_longest !shelf2 in
      List.iter
        (fun (cache, procs) ->
          let duration = Alloc_cache.time_on cache procs in
          let start = P.place profile ~earliest:0.0 ~duration ~procs in
          if Obs.enabled obs then
            Obs.prov_consider obs ~job:(Alloc_cache.job cache).Job.id ~start ~procs;
          entries := Schedule.entry ~job:(Alloc_cache.job cache) ~start ~procs () :: !entries)
        sorted2;
      let s = Schedule.make ~m !entries in
      if Obs.enabled obs then begin
        let n1 = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_shelf1 in
        Obs.mrt_pack obs ~shelf1:n1 ~shelf2:(Array.length caches - n1)
      end;
      entry.packed <- Some s;
      s

  let try_guess_memo ?obs ~m ~lambda caches memo =
    match eval_guess ?obs ~m ~lambda caches memo with
    | None -> Rejected
    | Some entry -> Accepted (pack_entry ?obs ~m caches entry)

  let try_guess_cached ?obs ~m ~lambda caches = try_guess_memo ?obs ~m ~lambda caches (ref [])

  let try_guess ?obs ~m ~lambda jobs =
    try_guess_cached ?obs ~m ~lambda (Array.of_list (List.map (Alloc_cache.of_job ~m) jobs))

  let schedule ?(obs = Obs.null) ?(epsilon = 0.01) ~m jobs =
    match jobs with
    | [] -> Schedule.make ~m []
    | _ ->
      (* Precondition: [Job.min_procs j <= m] for all jobs; the
         {!Schedulers} adapter rejects wider ones with a typed
         [Too_wide] error before calling. *)
      Obs.span obs "mrt" @@ fun () ->
      (* The allocation tables survive the whole dual search: every
         lambda guess re-queries them instead of re-scanning time_on. *)
      let caches =
        Obs.span obs "mrt.alloc" @@ fun () ->
        Array.of_list (List.map (Alloc_cache.of_job ~m) jobs)
      in
      let memo = ref [] in
      let lb = cmax_cached ~m caches in
      let lb = if lb > 0.0 then lb else 1e-9 in
      (* Find an accepted upper guess by doubling. *)
      let rec find_hi lambda =
        match eval_guess ~obs ~m ~lambda caches memo with
        | Some e -> (lambda, e)
        | None -> find_hi (2.0 *. lambda)
      in
      let best =
        Obs.span obs "mrt.search" @@ fun () ->
        let hi, first = find_hi lb in
        (* Bisect down to the smallest accepted guess; only that one is
           ever packed into a schedule. *)
        let best = ref first in
        let rec search lo hi =
          if hi -. lo <= epsilon *. lo then ()
          else begin
            let mid = (lo +. hi) /. 2.0 in
            match eval_guess ~obs ~m ~lambda:mid caches memo with
            | Some e ->
              best := e;
              search lo mid
            | None -> search mid hi
          end
        in
        search lb hi;
        !best
      in
      pack_entry ~obs ~m caches best
end

include Make (Profile)
