(** Scheduling on uniform (related) processors — the paper's
    intra-cluster heterogeneity (§1.2: "weakly heterogeneous inside
    each cluster (different generations of processors ... with
    different clock speeds)"; §2.2: "the heterogeneity of
    computational units ... can also be considered by uniform ...
    processors").

    Processors have speeds; a sequential task of length p runs in
    p / s on a speed-s processor.  A rigid parallel task on a set S of
    processors is synchronous, so it runs at the pace of the slowest:
    p / min(s, S).  Unlike the identical-machine core, allocations
    here name explicit processors, with per-processor busy intervals
    checked by {!validate}. *)

open Psched_workload

type placement = {
  job_id : int;
  procs : int list;  (** explicit processor indices *)
  start : float;
  duration : float;
}

type t = { speeds : float array; placements : placement list; makespan : float }

val list_schedule :
  ?order:(Packing.allocated -> Packing.allocated -> int) ->
  speeds:float array ->
  Packing.allocated list ->
  t
(** Greedy earliest-completion placement in list order (default
    largest area first): for each job needing k processors, every
    k-subset that is a prefix of processors sorted by availability is
    evaluated (with the candidate's min speed) and the completion-time
    minimiser wins.  Release dates are honoured.
    @raise Invalid_argument if a job needs more processors than exist
    or a speed is non-positive. *)

val makespan_lower_bound : speeds:float array -> Packing.allocated list -> float
(** max(total work / total speed, per-job fastest execution). *)

val validate : t -> Job.t list -> bool
(** Exactly-once placement, correct (speed-scaled) durations,
    per-processor exclusivity, release dates. *)
