open Psched_workload
open Psched_sim
module R = Psched_platform.Reservation

let windows ~m ~reservations =
  let boundaries =
    List.concat_map (fun (r : R.t) -> [ r.R.start; R.finish r ]) reservations
    |> List.filter (fun b -> b > 0.0)
    |> List.sort_uniq compare
  in
  let cuts = 0.0 :: boundaries in
  let rec build = function
    | [] -> []
    | [ last ] -> [ (last, infinity, m - R.procs_reserved_at reservations last) ]
    | a :: (b :: _ as rest) -> (a, b, m - R.procs_reserved_at reservations a) :: build rest
  in
  build cuts

let schedule ~m ~reservations jobs =
  if not (R.feasible ~m reservations) then
    invalid_arg "Reservation_batches.schedule: reservations exceed capacity";
  List.iter
    (fun (j : Job.t) ->
      if Job.min_procs j > m then
        invalid_arg
          (Printf.sprintf "Reservation_batches.schedule: job %d needs more than %d" j.Job.id m))
    jobs;
  let windows = windows ~m ~reservations in
  let density (j : Job.t) = j.weight /. Float.max (Lower_bounds.min_work ~m j) 1e-12 in
  let entries = ref [] in
  let remaining = ref jobs in
  let fill (wstart, wstop, capacity) =
    if capacity >= 1 && !remaining <> [] then begin
      let length = wstop -. wstart in
      let eligible, later =
        List.partition (fun (j : Job.t) -> j.release <= wstart +. 1e-9) !remaining
      in
      let profile = Profile.create capacity in
      let ordered =
        List.sort (fun a b -> compare (density b, a.Job.id) (density a, b.Job.id)) eligible
      in
      let leftover =
        List.filter
          (fun job ->
            (* Canonical allocation for the window length; infinite
               windows take the thriftiest allocation. *)
            let deadline = if Float.is_finite length then length else infinity in
            let alloc =
              if Float.is_finite deadline then Mrt.canonical_alloc ~m:capacity ~deadline job
              else Some (Moldable_alloc.work_bounded ~m:capacity ~delta:0.25 job)
            in
            match alloc with
            | None -> true
            | Some procs -> (
              let duration = Job.time_on job procs in
              match Profile.find_start profile ~earliest:0.0 ~duration ~procs with
              | s when s +. duration <= length +. 1e-9 ->
                Profile.reserve profile ~start:s ~duration ~procs;
                entries := Schedule.entry ~job ~start:(wstart +. s) ~procs () :: !entries;
                false
              | _ -> true
              | exception Not_found -> true))
          ordered
      in
      remaining := leftover @ later
    end
  in
  List.iter fill windows;
  (* Everything left (released after the last boundary, or never
     fitting a finite window) goes after the last reservation via
     conservative packing on the full machine. *)
  (match !remaining with
  | [] -> ()
  | rest ->
    let horizon =
      List.fold_left (fun acc (r : R.t) -> Float.max acc (R.finish r)) 0.0 reservations
    in
    let horizon =
      List.fold_left
        (fun acc (e : Schedule.entry) -> Float.max acc (Schedule.completion e))
        horizon !entries
    in
    let allocated =
      List.map (fun j -> (j, Moldable_alloc.work_bounded ~m ~delta:0.25 j)) rest
    in
    let tail = Packing.place ~earliest:horizon ~m allocated in
    entries := tail @ !entries);
  Schedule.make ~m !entries
