(** Shelf algorithms for rigid parallel tasks (§2.2: "the allocation
    problem corresponds to a strip-packing problem").

    A shelf is a set of tasks starting at the same date; the shelf's
    height is its longest task.  Classic level heuristics: Next-Fit
    Decreasing Height (NFDH, ratio 3 for strip packing) and First-Fit
    Decreasing Height (FFDH, ratio 2.7).  Widths are processor counts,
    so a shelf holds tasks whose widths sum to at most [m]; no
    contiguity is required. *)

open Psched_workload

type shelf = { start : float; height : float; tasks : (Job.t * int) list }

val nfdh_shelves : m:int -> (Job.t * int) list -> shelf list
(** Next-fit: sort by decreasing time, open a new shelf whenever the
    current one is full.  Shelves are stacked from date 0; release
    dates are ignored (off-line setting). *)

val ffdh_shelves : m:int -> (Job.t * int) list -> shelf list
(** First-fit: each task goes to the lowest shelf with room. *)

val schedule_of_shelves : m:int -> shelf list -> Psched_sim.Schedule.t

val nfdh : m:int -> (Job.t * int) list -> Psched_sim.Schedule.t
val ffdh : m:int -> (Job.t * int) list -> Psched_sim.Schedule.t
