open Psched_workload

type task = { id : int; work : float; max_procs : float; release : float; weight : float }

let task ?(release = 0.0) ?(weight = 1.0) ~id ~work ~max_procs () =
  if work <= 0.0 then invalid_arg "Malleable.task: work must be positive";
  if max_procs <= 0.0 then invalid_arg "Malleable.task: max_procs must be positive";
  if weight <= 0.0 then invalid_arg "Malleable.task: weight must be positive";
  if release < 0.0 then invalid_arg "Malleable.task: release must be non-negative";
  { id; work; max_procs; release; weight }

let of_job ~m (job : Job.t) =
  let cap = float_of_int (min m (Job.max_procs job)) in
  task ~release:job.release ~weight:job.weight ~id:job.id
    ~work:(Lower_bounds.min_work ~m job) ~max_procs:cap ()

type policy = Equipartition | Weighted
type completion = { task : task; finish : float }

type outcome = {
  completions : completion list;
  makespan : float;
  events : (float * (int * float) list) list;
}

(* Water-filling: distribute [m] processors among active tasks with
   caps and (for Weighted) weights.  Iterative: give each unsaturated
   task its proportional share; tasks hitting their cap are frozen and
   the surplus is redistributed. *)
let shares ~policy ~m active =
  let total_weight tasks =
    match policy with
    | Equipartition -> float_of_int (List.length tasks)
    | Weighted -> List.fold_left (fun acc (t, _) -> acc +. t.weight) 0.0 tasks
  in
  let weight t = match policy with Equipartition -> 1.0 | Weighted -> t.weight in
  let rec fill remaining_m unsat acc =
    if unsat = [] || remaining_m <= 1e-12 then
      acc @ List.map (fun (t, _) -> (t, 0.0)) unsat
    else begin
      let w = total_weight unsat in
      let saturated, ok =
        List.partition
          (fun (t, _) -> remaining_m *. weight t /. w >= t.max_procs -. 1e-12)
          unsat
      in
      if saturated = [] then
        acc @ List.map (fun (t, _) -> (t, remaining_m *. weight t /. w)) ok
      else begin
        let given = List.fold_left (fun a (t, _) -> a +. t.max_procs) 0.0 saturated in
        fill (remaining_m -. given) ok (acc @ List.map (fun (t, _) -> (t, t.max_procs)) saturated)
      end
    end
  in
  fill (float_of_int m) active []

let simulate ?(policy = Equipartition) ~m tasks =
  if m < 1 then invalid_arg "Malleable.simulate: m must be >= 1";
  let pending = ref (List.sort (fun a b -> compare (a.release, a.id) (b.release, b.id)) tasks) in
  let active = ref [] (* (task, remaining work) *) in
  let clock = ref 0.0 in
  let completions = ref [] in
  let events = ref [] in
  let record share_list =
    events := (!clock, List.map (fun (t, s) -> (t.id, s)) share_list) :: !events
  in
  while !pending <> [] || !active <> [] do
    (* Admit arrivals. *)
    let arrived, later = List.partition (fun t -> t.release <= !clock +. 1e-12) !pending in
    pending := later;
    active := !active @ List.map (fun t -> (t, t.work)) arrived;
    if !active = [] then begin
      match !pending with
      | t :: _ -> clock := t.release
      | [] -> ()
    end
    else begin
      let share_list = shares ~policy ~m (List.map (fun (t, r) -> (t, r)) !active) in
      record share_list;
      let rate t =
        match List.find_opt (fun (t', _) -> t'.id = t.id) share_list with
        | Some (_, s) -> s
        | None -> 0.0
      in
      (* Horizon: first completion at current rates, or next arrival. *)
      let next_completion =
        List.fold_left
          (fun acc (t, remaining) ->
            let r = rate t in
            if r > 1e-12 then Float.min acc (remaining /. r) else acc)
          infinity !active
      in
      let next_arrival =
        match !pending with t :: _ -> t.release -. !clock | [] -> infinity
      in
      let dt = Float.min next_completion next_arrival in
      if not (Float.is_finite dt) then
        invalid_arg "Malleable.simulate: starved task (zero rate and no arrivals)";
      clock := !clock +. dt;
      active :=
        List.filter_map
          (fun (t, remaining) ->
            let remaining = remaining -. (rate t *. dt) in
            if remaining <= 1e-9 *. t.work then begin
              completions := { task = t; finish = !clock } :: !completions;
              None
            end
            else Some (t, remaining))
          !active
    end
  done;
  let makespan = List.fold_left (fun acc c -> Float.max acc c.finish) 0.0 !completions in
  { completions = List.rev !completions; makespan; events = List.rev !events }

let completion_of outcome id =
  match List.find_opt (fun c -> c.task.id = id) outcome.completions with
  | Some c -> c.finish
  | None -> raise Not_found

let fluid_lower_bound ~m tasks =
  let area = List.fold_left (fun acc t -> acc +. t.work) 0.0 tasks /. float_of_int m in
  let critical =
    List.fold_left (fun acc t -> Float.max acc (t.release +. (t.work /. t.max_procs))) 0.0 tasks
  in
  Float.max area critical
