open Psched_workload
module Obs = Psched_obs.Obs

let shelf_class ~base p =
  if p <= base then 0
  else begin
    let c = int_of_float (Float.ceil (Float.log2 (p /. base) -. 1e-12)) in
    (* Guard against floating point at the boundary. *)
    let c = max 0 c in
    if base *. Float.pow 2.0 (float_of_int c) >= p then c else c + 1
  end

type shelf = { height : float; mutable used : int; mutable tasks : (Job.t * int) list; mutable weight : float }

let schedule ?(obs = Obs.null) ?base ~m tasks =
  List.iter
    (fun ((j : Job.t), k) ->
      if j.release > 0.0 then invalid_arg "Smart.schedule: release dates must be 0";
      if k > m then invalid_arg (Printf.sprintf "Smart.schedule: job %d wider than %d" j.id m))
    tasks;
  match tasks with
  | [] -> Psched_sim.Schedule.make ~m []
  | _ ->
    Obs.span obs "smart" @@ fun () ->
    let time (j, k) = Job.time_on j k in
    let base =
      match base with
      | Some b -> b
      | None -> List.fold_left (fun acc t -> Float.min acc (time t)) infinity tasks
    in
    (* Group tasks by shelf class and pack first-fit inside a class,
       longest tasks first to tighten shelves. *)
    let classes : (int, shelf list ref) Hashtbl.t = Hashtbl.create 16 in
    let sorted =
      List.sort (fun a b -> compare (time b, (fst a).Job.id) (time a, (fst b).Job.id)) tasks
    in
    let add ((j : Job.t), k) =
      let c = shelf_class ~base (time (j, k)) in
      let shelves =
        match Hashtbl.find_opt classes c with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace classes c r;
          r
      in
      let rec fit = function
        | [] ->
          let height = base *. Float.pow 2.0 (float_of_int c) in
          if Obs.enabled obs then Obs.prov_choice obs ~job:j.Job.id ~chosen:"new_shelf";
          shelves := !shelves @ [ { height; used = k; tasks = [ (j, k) ]; weight = j.weight } ]
        | s :: rest ->
          if s.used + k <= m then begin
            if Obs.enabled obs then begin
              Obs.prov_consider obs ~job:j.Job.id ~start:0.0 ~procs:k;
              Obs.prov_choice obs ~job:j.Job.id ~chosen:"shelf_fit"
            end;
            s.used <- s.used + k;
            s.tasks <- (j, k) :: s.tasks;
            s.weight <- s.weight +. j.weight
          end
          else begin
            if Obs.enabled obs then Obs.prov_reject obs ~job:j.Job.id ~reason:"shelf_full";
            fit rest
          end
      in
      fit !shelves
    in
    Obs.span obs "smart.shelves" (fun () -> List.iter add sorted);
    if Obs.enabled obs then
      Hashtbl.iter
        (fun c shelves ->
          List.iter
            (fun s ->
              Obs.shelf_fill obs ~cls:c ~height:s.height ~used:s.used
                ~tasks:(List.length s.tasks);
              Obs.Counter.incr obs "smart/shelves";
              Obs.Counter.add obs "smart/shelf_fill"
                (float_of_int s.used /. float_of_int m))
            !shelves)
        classes;
    let all_shelves = Hashtbl.fold (fun _ r acc -> !r @ acc) classes [] in
    let entries =
      Obs.span obs "smart.sequence" @@ fun () ->
      (* Sequence shelves by Smith's rule on (height / weight). *)
      let ordered =
        List.sort (fun a b -> compare (a.height /. a.weight) (b.height /. b.weight)) all_shelves
      in
      let _, entries =
        List.fold_left
          (fun (clock, acc) s ->
            let acc =
              List.fold_left
                (fun acc (job, procs) ->
                  Psched_sim.Schedule.entry ~job ~start:clock ~procs () :: acc)
                acc s.tasks
            in
            (clock +. s.height, acc))
          (0.0, []) ordered
      in
      entries
    in
    Psched_sim.Schedule.make ~m entries

let schedule_rigid_jobs ?obs ?base ~m jobs =
  schedule ?obs ?base ~m (List.map Packing.allocate_rigid jobs)
