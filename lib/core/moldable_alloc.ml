open Psched_workload

let feasible_range ~m (job : Job.t) =
  let lo = Job.min_procs job and hi = min m (Job.max_procs job) in
  if lo > hi then
    invalid_arg (Printf.sprintf "Moldable_alloc: job %d cannot run on %d processors" job.id m);
  (lo, hi)

let argmin ~lo ~hi f =
  let best = ref lo and best_v = ref (f lo) in
  for k = lo + 1 to hi do
    let v = f k in
    if v < !best_v then begin
      best := k;
      best_v := v
    end
  done;
  !best

let fastest ~m job =
  let lo, hi = feasible_range ~m job in
  argmin ~lo ~hi (fun k -> Job.time_on job k)

let thriftiest ~m job =
  let lo, hi = feasible_range ~m job in
  argmin ~lo ~hi (fun k -> Job.work_on job k)

let work_bounded ~m ~delta job =
  let lo, hi = feasible_range ~m job in
  let wmin = Job.work_on job (thriftiest ~m job) in
  let budget = (1.0 +. delta) *. wmin in
  let best = ref lo and best_t = ref infinity in
  for k = lo to hi do
    if Job.work_on job k <= budget +. 1e-12 && Job.time_on job k < !best_t then begin
      best := k;
      best_t := Job.time_on job k
    end
  done;
  !best

let canonical ~m ~guess job =
  match Mrt.canonical_alloc ~m ~deadline:guess job with
  | Some k -> k
  | None -> fastest ~m job

let allocate choose jobs = List.map (fun j -> (j, choose j)) jobs
