(** Malleable scheduling — the third PT class of §2.2, which the paper
    leaves out ("Malleability is much more easily usable from the
    scheduling point of view but requires advanced capabilities from
    the runtime environment ... We will not consider malleability
    here").  Provided as the natural extension: it quantifies what the
    runtime capabilities would buy.

    Model: processor-sharing fluid allocation.  A malleable task has a
    total work, a maximum useful parallelism, and processes work at a
    rate equal to its (possibly fractional) processor share, capped by
    that maximum.  The scheduler re-partitions processors at every
    event (arrival or completion):

    - {e equipartition}: equal shares, water-filled over the caps —
      the classic fair policy;
    - {e weighted}: shares proportional to weights (priorities). *)

open Psched_workload

type task = {
  id : int;
  work : float;  (** processor-seconds *)
  max_procs : float;  (** maximum useful parallelism (cap on the rate) *)
  release : float;
  weight : float;
}

val task : ?release:float -> ?weight:float -> id:int -> work:float -> max_procs:float -> unit -> task
(** @raise Invalid_argument on non-positive work/max_procs/weight. *)

val of_job : m:int -> Job.t -> task
(** Malleable view of a PT job: work = minimal work, parallelism cap =
    largest feasible allocation (capped by [m]).  This is the
    idealisation a malleable runtime could achieve for that job. *)

type policy = Equipartition | Weighted

type completion = { task : task; finish : float }

type outcome = {
  completions : completion list;
  makespan : float;
  events : (float * (int * float) list) list;
      (** re-partition trace: date, (task id, processor share) list *)
}

val simulate : ?policy:policy -> m:int -> task list -> outcome
(** Run the fluid simulation.  Total shares never exceed [m]; each
    task's share never exceeds its cap; tasks finish exactly when
    their work is exhausted.
    @raise Invalid_argument on an empty machine. *)

val completion_of : outcome -> int -> float
(** @raise Not_found for an unknown task id. *)

val fluid_lower_bound : m:int -> task list -> float
(** max(total work / m, max_j (release_j + work_j / cap_j)): no fluid
    schedule can beat it. *)
