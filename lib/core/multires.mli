(** Multi-resource list scheduling and EASY backfilling.

    Ports of {!Packing.list_schedule} and {!Backfilling.easy} onto the
    vector availability profile ({!Psched_sim.Rprofile}): a job starts
    only when every component of its request vector
    ({!Psched_workload.Job.request} — cores at the chosen allocation,
    plus the job's stored memory and bandwidth demands) fits every
    overlapping segment of the timeline.

    Degenerate compatibility contract (DESIGN.md section 15): with an
    unbounded capacity ({!Psched_platform.Resource.cap} [~cores:m ()])
    and jobs with zero non-core demands, both functions produce
    schedules bit-identical to their scalar counterparts — exercised on
    1000 random instances in the QCheck suite.

    Precondition: every job's minimal request fits [cap].  The
    {!Schedulers} adapters ("list-mr", "easy-mr") enforce this with
    typed [Too_wide]/[Over_resource] errors; direct callers must
    filter infeasible jobs themselves. *)

val list_schedule :
  ?order:(Packing.allocated -> Packing.allocated -> int) ->
  ?reservations:Psched_platform.Reservation.t list ->
  cap:Psched_platform.Resource.t ->
  Packing.allocated list ->
  Psched_sim.Schedule.t
(** Greedy list placement at the earliest date where the full request
    vector fits, in [order] (FCFS by release then id, by default).
    Reservations hold cores only. *)

val easy :
  ?obs:Psched_obs.Obs.t ->
  ?reservations:Psched_platform.Reservation.t list ->
  cap:Psched_platform.Resource.t ->
  Packing.allocated list ->
  Psched_sim.Schedule.t
(** EASY aggressive backfilling: FCFS queue, the head holds its
    earliest reservation on the {e full} vector while shorter jobs
    backfill — so a backfilled job can steal neither the head's cores
    nor its memory or bandwidth.  Emits the same observability events
    as the scalar engine ("job.start", "backfill.fill",
    "backfill.hole", counters). *)
