(** Scheduling with inexact runtime estimates.

    The paper's on-line discussion (§2.2, §4.2) distinguishes
    clairvoyant scheduling (parameters known at release) from
    non-clairvoyant scheduling.  Real batch systems sit in between:
    users supply {e estimates} (usually over-estimates, since jobs are
    killed at their requested time).  This module re-runs EASY
    backfilling with estimated durations driving the planning while
    actual durations drive the events, quantifying how much guarantee
    degradation the clairvoyance assumption hides.

    The scheduler sees [estimate job procs]; a started job actually
    completes after [Job.time_on job procs].  Estimates must
    over-estimate ([>= actual]); under-estimates would kill jobs in a
    real system, which is out of scope here and rejected. *)

open Psched_workload

type estimator = Job.t -> int -> float
(** Estimated duration of a job on its allocation. *)

val exact : estimator
(** The clairvoyant case: estimate = actual. *)

val overestimate : factor:float -> estimator
(** actual x factor, the uniform padding model (factor >= 1). *)

val noisy : seed:int -> max_factor:float -> estimator
(** Per-job factor drawn uniformly in [\[1, max_factor\]],
    deterministically from the job id and [seed]. *)

val easy :
  ?reservations:Psched_platform.Reservation.t list ->
  estimator:estimator ->
  m:int ->
  Packing.allocated list ->
  Psched_sim.Schedule.t
(** EASY backfilling planned with estimates, executed with actual
    durations.  The returned schedule carries actual durations (so the
    standard validator applies).
    @raise Invalid_argument if an estimate is below the actual
    duration or a job is wider than [m]. *)
