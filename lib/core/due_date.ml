open Psched_workload
open Psched_sim

let due (j : Job.t) = Option.value ~default:infinity j.due

let edd_order =
  fun ((a : Job.t), _) ((b : Job.t), _) -> compare (due a, a.release, a.id) (due b, b.release, b.id)

let edd ~m allocated = Packing.list_schedule ~order:edd_order ~m allocated

type outcome = { schedule : Schedule.t; accepted : Job.t list; rejected : Job.t list }

let with_admission ~m allocated =
  let profile = Profile.create m in
  let sorted = List.sort edd_order allocated in
  let entries = ref [] and accepted = ref [] and rejected = ref [] in
  List.iter
    (fun ((job : Job.t), procs) ->
      let duration = Job.time_on job procs in
      let start = Profile.find_start profile ~earliest:job.release ~duration ~procs in
      if start +. duration <= due job +. 1e-9 then begin
        if duration > 0.0 then Profile.reserve profile ~start ~duration ~procs;
        entries := Schedule.entry ~job ~start ~procs () :: !entries;
        accepted := job :: !accepted
      end
      else rejected := job :: !rejected)
    sorted;
  {
    schedule = Schedule.make ~m !entries;
    accepted = List.rev !accepted;
    rejected = List.rev !rejected;
  }
