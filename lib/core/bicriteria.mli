(** Bi-criteria scheduling by doubling batches (§4.4; Hall, Schulz,
    Shmoys, Wein).

    A makespan procedure A_Cmax takes a deadline [d] and schedules a
    subset of the pending jobs of (near-)maximal weight within
    [rho * d].  Running it in batches of doubling deadlines d, 2d, 4d,
    ... yields simultaneous performance ratios 4*rho on the makespan
    and on the sum of weighted completion times.

    The dual procedure used here allocates each job its canonical
    allocation gamma(j, d) (smallest allocation meeting the deadline),
    considers jobs by decreasing weight density w_j / minwork_j, and
    keeps a job iff it fits within the batch window — a greedy
    weight-maximising knapsack, as in the paper's "simulated
    implementation of a variation of the bi-criteria algorithm"
    (Figure 2).  Release dates are honoured: a job joins the first
    batch that opens after its release. *)

open Psched_workload

type batch = { start : float; deadline : float; jobs : Job.t list }

val schedule :
  ?obs:Psched_obs.Obs.t -> ?rho:float -> ?d0:float -> m:int -> Job.t list -> Psched_sim.Schedule.t
(** [rho] is the ratio budget of the dual procedure (default 1.5, the
    MRT guarantee); [d0] the initial deadline (default: the smallest
    fastest-time among the jobs).  With an enabled [obs], every
    doubling batch emits a ["batch.flush"] event carrying its deadline
    and accepted/rejected counts accumulate under ["bicriteria/"].
    @raise Invalid_argument if a job cannot run on [m] processors. *)

val batches : ?rho:float -> ?d0:float -> m:int -> Job.t list -> batch list
(** The batch decomposition of the same run. *)
