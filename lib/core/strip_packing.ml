open Psched_workload

type shelf = { start : float; height : float; tasks : (Job.t * int) list }

let by_decreasing_time ((a : Job.t), ka) ((b : Job.t), kb) =
  compare (Job.time_on b kb, a.id) (Job.time_on a ka, b.id)

(* Mutable shelf under construction. *)
type building = { mutable used : int; mutable height_b : float; mutable tasks_b : (Job.t * int) list }

let check_width ~m tasks =
  List.iter
    (fun ((j : Job.t), k) ->
      if k > m then
        invalid_arg (Printf.sprintf "Strip_packing: job %d needs %d > %d processors" j.id k m))
    tasks

let close_shelves shelves =
  (* Stack the built shelves from 0, preserving build order. *)
  let _, out =
    List.fold_left
      (fun (clock, acc) b ->
        let shelf = { start = clock; height = b.height_b; tasks = List.rev b.tasks_b } in
        (clock +. b.height_b, shelf :: acc))
      (0.0, []) shelves
  in
  List.rev out

let nfdh_shelves ~m tasks =
  check_width ~m tasks;
  let sorted = List.sort by_decreasing_time tasks in
  let shelves = ref [] in
  let current = ref None in
  let open_shelf (job, k) =
    let b = { used = k; height_b = Job.time_on job k; tasks_b = [ (job, k) ] } in
    shelves := b :: !shelves;
    current := Some b
  in
  let add ((job : Job.t), k) =
    match !current with
    | Some b when b.used + k <= m ->
      b.used <- b.used + k;
      b.tasks_b <- (job, k) :: b.tasks_b
    | _ -> open_shelf (job, k)
  in
  List.iter add sorted;
  close_shelves (List.rev !shelves)

let ffdh_shelves ~m tasks =
  check_width ~m tasks;
  let sorted = List.sort by_decreasing_time tasks in
  let shelves = ref [] in
  let add ((job : Job.t), k) =
    let rec fit = function
      | [] ->
        shelves :=
          !shelves @ [ { used = k; height_b = Job.time_on job k; tasks_b = [ (job, k) ] } ]
      | b :: rest ->
        if b.used + k <= m then begin
          b.used <- b.used + k;
          b.tasks_b <- (job, k) :: b.tasks_b
        end
        else fit rest
    in
    fit !shelves
  in
  List.iter add sorted;
  close_shelves !shelves

let schedule_of_shelves ~m shelves =
  let entries =
    List.concat_map
      (fun shelf ->
        List.map (fun (job, procs) -> Psched_sim.Schedule.entry ~job ~start:shelf.start ~procs ())
          shelf.tasks)
      shelves
  in
  Psched_sim.Schedule.make ~m entries

let nfdh ~m tasks = schedule_of_shelves ~m (nfdh_shelves ~m tasks)
let ffdh ~m tasks = schedule_of_shelves ~m (ffdh_shelves ~m tasks)
