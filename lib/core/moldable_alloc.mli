(** A-priori allocation strategies for moldable jobs (§5.1, second
    strategy for the rigid/moldable mix: "calculate a-priori an
    allocation for the moldable jobs, and then apply a rigid
    scheduling algorithm on the resulting rigid jobs"). *)

open Psched_workload

val fastest : m:int -> Job.t -> int
(** Allocation minimising execution time (ties: fewest processors). *)

val thriftiest : m:int -> Job.t -> int
(** Allocation minimising work — the communication-avoiding choice. *)

val work_bounded : m:int -> delta:float -> Job.t -> int
(** Fastest allocation whose work stays within (1 + delta) of the
    minimal work: the classic compromise between parallel efficiency
    and response time. *)

val canonical : m:int -> guess:float -> Job.t -> int
(** gamma(j, guess): smallest allocation meeting the deadline [guess];
    falls back to {!fastest} when the guess is unreachable. *)

val allocate : (Job.t -> int) -> Job.t list -> Packing.allocated list
