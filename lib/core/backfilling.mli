(** Backfilling for rigid (already-allocated) jobs with release dates,
    with support for advance reservations (§5.1).

    - {e Conservative}: every queued job holds a start-time guarantee;
      later jobs may fill holes only if no earlier guarantee moves.
      With clairvoyant (exact) estimates this equals FCFS
      earliest-fit, which {!Packing.list_schedule} computes; the
      wrapper here adds reservations.
    - {e EASY} (aggressive): only the queue head holds a guarantee;
      any other job may start immediately if it does not delay the
      head's reservation.  Implemented as an event-driven simulation. *)

val conservative :
  ?obs:Psched_obs.Obs.t ->
  ?reservations:Psched_platform.Reservation.t list ->
  m:int ->
  Packing.allocated list ->
  Psched_sim.Schedule.t
(** With an enabled [obs], each placement emits a [prov.consider]
    decision-provenance event (via {!Packing.place}). *)

val easy :
  ?obs:Psched_obs.Obs.t ->
  ?reservations:Psched_platform.Reservation.t list ->
  m:int ->
  Packing.allocated list ->
  Psched_sim.Schedule.t
(** With an enabled [obs], every start emits ["job.start"] (and feeds
    the queue-wait histogram), backfilled starts emit
    ["backfill.fill"], and failed backfill probes emit
    ["backfill.hole"] with the earliest date the candidate could start
    instead; tracing never changes the schedule.

    Precondition: every allocation is at most [m] processors wide.
    The {!Schedulers} adapters enforce this with a typed [Too_wide]
    error; direct callers must filter wider jobs themselves. *)

module Make (P : Psched_sim.Profile_intf.S) : sig
  val easy :
    ?obs:Psched_obs.Obs.t ->
    ?reservations:Psched_platform.Reservation.t list ->
    m:int ->
    Packing.allocated list ->
    Psched_sim.Schedule.t
end
(** EASY over an arbitrary profile engine, used to compare engines
    under the same scheduler (see [bench/main.exe perf]). *)
