(** On-line queue disciplines for the response-time criteria of §3
    (mean/maximum stretch, mean flow).

    The guarantees of §4 target makespan and weighted completion; a
    grid's users mostly feel waiting time.  This module provides the
    classical non-preemptive queue orders, applied greedily: at every
    event (arrival or completion) the queue is scanned in priority
    order and every job that fits on the currently free processors is
    started.

    - [Fcfs]: arrival order (baseline);
    - [Sjf]: shortest job first — near-optimal for mean flow;
    - [Wsjf]: weight-over-time density (generalised Smith rule);
    - [Max_stretch_first]: highest current stretch (wait + run over
      run) first — ages long-waiting short jobs, counters starvation
      and targets the stretch criteria.

    Wide jobs can be overtaken under all but FCFS — the classic price
    of greedy space sharing; the due-date layer ({!Due_date}) and
    backfilling ({!Backfilling}) are the remedies. *)

type policy = Fcfs | Sjf | Wsjf | Max_stretch_first

val all : (string * policy) list

val schedule : policy -> m:int -> Packing.allocated list -> Psched_sim.Schedule.t
(** Event-driven greedy run; terminates once every job is placed.

    Precondition: every allocation is at most [m] processors wide.
    The {!Schedulers} adapter enforces this with a typed [Too_wide]
    error; direct callers must filter wider jobs themselves. *)
