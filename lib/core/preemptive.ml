open Psched_workload

type piece = { job_id : int; proc : int; start : float; stop : float }
type t = { pieces : piece list; makespan : float; m : int }

let optimum ~m times =
  let total = List.fold_left ( +. ) 0.0 times in
  let longest = List.fold_left Float.max 0.0 times in
  Float.max (total /. float_of_int m) longest

let schedule ~m jobs =
  if m < 1 then invalid_arg "Preemptive.schedule: m must be >= 1";
  List.iter
    (fun (j : Job.t) ->
      if j.release > 0.0 then invalid_arg "Preemptive.schedule: release dates not supported")
    jobs;
  let times = List.map Job.seq_time jobs in
  let horizon = optimum ~m times in
  let pieces = ref [] in
  let proc = ref 0 and cursor = ref 0.0 in
  let place (j : Job.t) =
    let remaining = ref (Job.seq_time j) in
    while !remaining > 1e-12 do
      let room = horizon -. !cursor in
      if room <= 1e-12 then begin
        incr proc;
        cursor := 0.0
      end
      else begin
        let slice = Float.min room !remaining in
        pieces := { job_id = j.id; proc = !proc; start = !cursor; stop = !cursor +. slice } :: !pieces;
        cursor := !cursor +. slice;
        remaining := !remaining -. slice
      end
    done
  in
  List.iter place jobs;
  let makespan =
    List.fold_left (fun acc p -> Float.max acc p.stop) 0.0 !pieces
  in
  { pieces = List.rev !pieces; makespan; m }

let validate t jobs =
  let eps = 1e-6 in
  (* Exact processing time per job. *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals p.job_id) in
      Hashtbl.replace totals p.job_id (prev +. (p.stop -. p.start)))
    t.pieces;
  let amounts_ok =
    List.for_all
      (fun (j : Job.t) ->
        Float.abs (Option.value ~default:0.0 (Hashtbl.find_opt totals j.id) -. Job.seq_time j)
        <= eps)
      jobs
  in
  let in_range = List.for_all (fun p -> p.proc >= 0 && p.proc < t.m) t.pieces in
  (* No overlap on a processor. *)
  let per_proc_ok =
    List.for_all
      (fun q ->
        let ps =
          List.filter (fun p -> p.proc = q) t.pieces
          |> List.sort (fun a b -> compare a.start b.start)
        in
        let rec scan = function
          | a :: (b :: _ as rest) -> b.start >= a.stop -. eps && scan rest
          | _ -> true
        in
        scan ps)
      (List.init t.m Fun.id)
  in
  (* No job on two processors at once. *)
  let no_self_overlap =
    List.for_all
      (fun (j : Job.t) ->
        let ps = List.filter (fun p -> p.job_id = j.id) t.pieces in
        List.for_all
          (fun a ->
            List.for_all
              (fun b -> a == b || a.proc = b.proc || a.stop <= b.start +. eps || b.stop <= a.start +. eps)
              ps)
          ps)
      jobs
  in
  amounts_ok && in_range && per_proc_ok && no_self_overlap
