open Psched_workload
open Psched_sim

type strategy = Separate of { rigid_first : bool } | Apriori of { delta : float } | First_fit_batch

let is_rigid (j : Job.t) = match j.shape with Job.Rigid _ -> true | _ -> false

let shift_entries delta entries =
  List.map (fun (e : Schedule.entry) -> { e with Schedule.start = e.start +. delta }) entries

let separate ~rigid_first ~m jobs =
  let rigid, moldable = List.partition is_rigid jobs in
  let sched_rigid js = Packing.list_schedule ~m (List.map Packing.allocate_rigid js) in
  let sched_moldable js = Mrt.schedule ~m js in
  let first, second = if rigid_first then (sched_rigid rigid, sched_moldable moldable)
    else (sched_moldable moldable, sched_rigid rigid)
  in
  let offset = Schedule.makespan first in
  Schedule.make ~m (first.Schedule.entries @ shift_entries offset second.Schedule.entries)

let apriori ~delta ~m jobs =
  let allocated =
    List.map
      (fun (j : Job.t) ->
        if is_rigid j then Packing.allocate_rigid j else (j, Moldable_alloc.work_bounded ~m ~delta j))
      jobs
  in
  (* Largest-area-first conservative packing behaves well off-line. *)
  Packing.list_schedule ~order:Packing.largest_area_first ~m allocated

let schedule strategy ~m jobs =
  match strategy with
  | Separate { rigid_first } -> separate ~rigid_first ~m jobs
  | Apriori { delta } -> apriori ~delta ~m jobs
  | First_fit_batch -> Bicriteria.schedule ~m jobs

let all_strategies =
  [
    ("separate (moldable first)", Separate { rigid_first = false });
    ("separate (rigid first)", Separate { rigid_first = true });
    ("a-priori allocation", Apriori { delta = 0.25 });
    ("first-fit batches", First_fit_batch);
  ]
