open Psched_workload
open Psched_sim

type estimator = Job.t -> int -> float

let exact job procs = Job.time_on job procs

let overestimate ~factor =
  if factor < 1.0 then invalid_arg "Nonclairvoyant.overestimate: factor must be >= 1";
  fun job procs -> factor *. Job.time_on job procs

let noisy ~seed ~max_factor =
  if max_factor < 1.0 then invalid_arg "Nonclairvoyant.noisy: max_factor must be >= 1";
  fun (job : Job.t) procs ->
    let rng = Psched_util.Rng.create ((job.id * 2654435761) + seed) in
    Psched_util.Rng.uniform rng 1.0 max_factor *. Job.time_on job procs

let easy ?(reservations = []) ~estimator ~m allocated =
  List.iter
    (fun ((j : Job.t), k) ->
      if k > m then
        invalid_arg (Printf.sprintf "Nonclairvoyant.easy: job %d wider than %d" j.id m);
      if estimator j k < Job.time_on j k -. 1e-9 then
        invalid_arg (Printf.sprintf "Nonclairvoyant.easy: job %d under-estimated" j.id))
    allocated;
  (* The profile is the scheduler's *belief*: running jobs occupy their
     estimated window; when a job actually completes earlier, the
     leftover belief is released. *)
  let profile = Profile.create m in
  List.iter
    (fun (r : Psched_platform.Reservation.t) ->
      Profile.reserve profile ~start:r.start ~duration:r.duration ~procs:r.procs)
    reservations;
  let entries = ref [] in
  let by_fcfs ((a : Job.t), _) ((b : Job.t), _) = compare (a.release, a.id) (b.release, b.id) in
  let pending = ref (List.sort by_fcfs allocated) in
  let queue = ref [] in
  let module H = Psched_util.Heap in
  (* Events carry an optional belief-release action. *)
  let events = H.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  let seq = ref 0 in
  let push t = incr seq; H.add events (t, !seq) in
  List.iter (fun ((j : Job.t), _) -> push j.release) !pending;
  List.iter
    (fun (r : Psched_platform.Reservation.t) ->
      push r.start;
      push (Psched_platform.Reservation.finish r))
    reservations;
  let eps = 1e-9 in
  let releases = ref [] (* (actual completion, start, est_duration, procs) *) in
  let start_job now ((job : Job.t), procs) =
    let actual = Job.time_on job procs in
    let believed = estimator job procs in
    if believed > 0.0 then Profile.reserve profile ~start:now ~duration:believed ~procs;
    entries := Schedule.entry ~job ~start:now ~procs () :: !entries;
    releases := (now +. actual, now, believed, procs) :: !releases;
    push (now +. actual)
  in
  let flush_releases now =
    let due, keep = List.partition (fun (t, _, _, _) -> t <= now +. eps) !releases in
    releases := keep;
    List.iter
      (fun (actual_finish, start, believed, procs) ->
        (* Give back the belief tail [actual finish, start + believed);
           the endpoint must match the reservation's breakpoint
           exactly, hence release_window. *)
        let belief_end = start +. believed in
        if belief_end > actual_finish +. eps then
          Profile.release_window profile ~start:actual_finish ~stop:belief_end ~procs)
      due
  in
  let starts_now now ((job : Job.t), procs) =
    let believed = estimator job procs in
    match Profile.find_start profile ~earliest:now ~duration:believed ~procs with
    | s -> s <= now +. eps
    | exception Not_found -> false
  in
  let rec drain_head now =
    match !queue with
    | head :: rest when starts_now now head ->
      start_job now head;
      queue := rest;
      drain_head now
    | _ -> ()
  in
  let backfill now =
    match !queue with
    | [] | [ _ ] -> ()
    | ((hjob : Job.t), hprocs) :: rest ->
      let hdur = estimator hjob hprocs in
      let hstart = Profile.find_start profile ~earliest:now ~duration:hdur ~procs:hprocs in
      if hdur > 0.0 then Profile.reserve profile ~start:hstart ~duration:hdur ~procs:hprocs;
      let kept =
        List.filter
          (fun job ->
            if starts_now now job then begin
              start_job now job;
              false
            end
            else true)
          rest
      in
      if hdur > 0.0 then Profile.release profile ~start:hstart ~duration:hdur ~procs:hprocs;
      queue := (hjob, hprocs) :: kept
  in
  let step now =
    flush_releases now;
    let arrived, still = List.partition (fun ((j : Job.t), _) -> j.release <= now +. eps) !pending in
    pending := still;
    queue := !queue @ arrived;
    drain_head now;
    backfill now
  in
  let last = ref neg_infinity in
  let rec loop () =
    match H.pop events with
    | None -> ()
    | Some (t, _) ->
      if t > !last +. eps then begin
        last := t;
        step t
      end;
      loop ()
  in
  loop ();
  assert (!queue = [] && !pending = []);
  Schedule.make ~m !entries
