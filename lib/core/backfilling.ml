open Psched_workload
open Psched_sim
module Obs = Psched_obs.Obs

let conservative ?obs ?(reservations = []) ~m allocated =
  Packing.list_schedule ?obs ~reservations ~m allocated

module Make (P : Profile_intf.S) = struct
  let seed_reservations ~m reservations =
    let profile = P.create m in
    List.iter
      (fun (r : Psched_platform.Reservation.t) ->
        P.reserve profile ~start:r.start ~duration:r.duration ~procs:r.procs)
      reservations;
    profile

  (* Precondition: every allocation is at most [m] processors wide.
     The {!Schedulers} adapters — the only sanctioned entry point —
     reject wider jobs with a typed [Too_wide] error before calling;
     an unchecked wide job would simply never fit and loop on the
     event heap, so callers bypassing the registry must filter. *)
  let easy ?(obs = Obs.null) ?(reservations = []) ~m allocated =
    let profile = seed_reservations ~m reservations in
    let entries = ref [] in
    (* Queue in FCFS (release, id) order; jobs enter at their release. *)
    let by_fcfs ((a : Job.t), _) ((b : Job.t), _) = compare (a.release, a.id) (b.release, b.id) in
    let pending = ref (List.sort by_fcfs allocated) in
    let queue = ref [] (* arrived, not started, FCFS order *) in
    let events = Psched_util.Heap.create ~cmp:compare in
    List.iter (fun ((j : Job.t), _) -> Psched_util.Heap.add events j.release) !pending;
    (* Reservation boundaries are wake-up points too: a job blocked by a
       reservation becomes startable when it expires. *)
    List.iter
      (fun (r : Psched_platform.Reservation.t) ->
        Psched_util.Heap.add events r.start;
        Psched_util.Heap.add events (Psched_platform.Reservation.finish r))
      reservations;
    let eps = 1e-9 in
    let sim_now = ref 0.0 in
    if Obs.enabled obs then Obs.set_clock obs (fun () -> !sim_now);
    let start_job now ((job : Job.t), procs) =
      let duration = Job.time_on job procs in
      if duration > 0.0 then P.reserve profile ~start:now ~duration ~procs;
      entries := Schedule.entry ~job ~start:now ~procs () :: !entries;
      if Obs.enabled obs then begin
        Obs.job_start obs ~job:job.Job.id ~start:now ~procs;
        Obs.queue_wait obs ~job:job.Job.id ~wait:(now -. job.Job.release);
        Obs.Counter.incr obs "backfill/started"
      end;
      Psched_util.Heap.add events (now +. duration)
    in
    let starts_now now ((job : Job.t), procs) =
      let duration = Job.time_on job procs in
      match P.find_start profile ~earliest:now ~duration ~procs with
      | s -> s <= now +. eps
      | exception Not_found -> false
    in
    let rec drain_head now =
      match !queue with
      | (((hjob : Job.t), _) as head) :: rest when starts_now now head ->
        if Obs.enabled obs then Obs.prov_choice obs ~job:hjob.Job.id ~chosen:"head";
        start_job now head;
        queue := rest;
        drain_head now
      | _ -> ()
    in
    let backfill now =
      match !queue with
      | [] | [ _ ] -> ()
      | ((hjob : Job.t), hprocs) :: rest ->
        Obs.span obs "easy.backfill" @@ fun () ->
        (* Hold the head's earliest reservation while backfilling. *)
        let hdur = Job.time_on hjob hprocs in
        let hstart = P.find_start profile ~earliest:now ~duration:hdur ~procs:hprocs in
        if hdur > 0.0 then P.reserve profile ~start:hstart ~duration:hdur ~procs:hprocs;
        if Obs.enabled obs then
          Obs.prov_reserve obs ~job:hjob.Job.id ~start:hstart ~procs:hprocs;
        let kept =
          List.filter
            (fun ((job : Job.t), procs) ->
              if starts_now now (job, procs) then begin
                if Obs.enabled obs then begin
                  Obs.prov_choice obs ~job:job.Job.id ~chosen:"backfill";
                  Obs.backfill_fill obs ~job:job.Job.id ~start:now ~procs;
                  Obs.Counter.incr obs "backfill/filled"
                end;
                start_job now (job, procs);
                false
              end
              else begin
                (* The probe failed: record where the job could start
                   instead (pure profile query, trace-only work). *)
                if Obs.enabled obs then begin
                  let duration = Job.time_on job procs in
                  let at =
                    Obs.span obs "easy.query" @@ fun () ->
                    match P.find_start profile ~earliest:now ~duration ~procs with
                    | s -> s
                    | exception Not_found -> infinity
                  in
                  Obs.backfill_hole obs ~job:job.Job.id ~start:at ~procs;
                  Obs.prov_reject obs ~job:job.Job.id ~reason:"would_delay_head";
                  Obs.Counter.incr obs "backfill/hole_probes"
                end;
                true
              end)
            rest
        in
        if hdur > 0.0 then P.release profile ~start:hstart ~duration:hdur ~procs:hprocs;
        queue := ((hjob, hprocs)) :: kept
    in
    let step now =
      let arrived, still = List.partition (fun ((j : Job.t), _) -> j.release <= now +. eps) !pending in
      pending := still;
      queue := !queue @ arrived;
      drain_head now;
      backfill now
    in
    let last = ref neg_infinity in
    let rec loop () =
      match Psched_util.Heap.pop events with
      | None -> ()
      | Some t ->
        if t > !last +. eps then begin
          last := t;
          sim_now := t;
          step t
        end;
        loop ()
    in
    Obs.span obs "easy" loop;
    assert (!queue = [] && !pending = []);
    Schedule.make ~m !entries
end

include Make (Profile)
