open Psched_workload
open Psched_sim
module Obs = Psched_obs.Obs

type allocated = Job.t * int

let allocate_rigid (job : Job.t) =
  match job.shape with
  | Job.Rigid { procs; _ } -> (job, procs)
  | Job.Moldable { min_procs; _ } -> (job, min_procs)
  | Job.Divisible _ ->
    invalid_arg "Packing.allocate_rigid: divisible jobs are handled by the DLT layer"
  | Job.Multiparam _ -> (job, 1)

let place ?(obs = Obs.null) ?profile ?(earliest = 0.0) ~m allocated =
  let profile = match profile with Some p -> p | None -> Profile.create m in
  let place_one ((job : Job.t), procs) =
    if procs > m then
      invalid_arg
        (Printf.sprintf "Packing.place: job %d needs %d > %d processors" job.id procs m);
    let duration = Job.time_on job procs in
    let start =
      Profile.place profile ~earliest:(Float.max job.release earliest) ~duration ~procs
    in
    if Obs.enabled obs then Obs.prov_consider obs ~job:job.id ~start ~procs;
    Schedule.entry ~job ~start ~procs ()
  in
  List.map place_one allocated

let fcfs ((a : Job.t), _) ((b : Job.t), _) = compare (a.release, a.id) (b.release, b.id)

let largest_area_first ((a : Job.t), ka) ((b : Job.t), kb) =
  let area (j, k) = Job.work_on j k in
  compare (area (b, kb), a.id) (area (a, ka), b.id)

let longest_time_first ((a : Job.t), ka) ((b : Job.t), kb) =
  compare (Job.time_on b kb, a.id) (Job.time_on a ka, b.id)

let list_schedule ?(obs = Obs.null) ?(order = fcfs) ?(reservations = []) ~m allocated =
  let profile = Profile.create m in
  List.iter
    (fun (r : Psched_platform.Reservation.t) ->
      Profile.reserve profile ~start:r.start ~duration:r.duration ~procs:r.procs)
    reservations;
  let sorted = List.sort order allocated in
  let entries = place ~obs ~profile ~m sorted in
  Schedule.make ~m entries
