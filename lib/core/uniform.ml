open Psched_workload

type placement = { job_id : int; procs : int list; start : float; duration : float }
type t = { speeds : float array; placements : placement list; makespan : float }

let min_speed speeds procs =
  List.fold_left (fun acc q -> Float.min acc speeds.(q)) infinity procs

let list_schedule ?(order = Packing.largest_area_first) ~speeds allocated =
  let m = Array.length speeds in
  Array.iter (fun s -> if s <= 0.0 then invalid_arg "Uniform: speeds must be positive") speeds;
  List.iter
    (fun ((j : Job.t), k) ->
      if k > m then invalid_arg (Printf.sprintf "Uniform: job %d needs %d > %d processors" j.id k m))
    allocated;
  let free_at = Array.make m 0.0 in
  let placements = ref [] in
  let place ((job : Job.t), k) =
    let p = Job.time_on job k in
    (* Processors by increasing availability. *)
    let by_free = List.init m Fun.id in
    let by_free = List.sort (fun a b -> compare (free_at.(a), a) (free_at.(b), b)) by_free in
    let best = ref None in
    (* Among the L earliest-free processors, the k fastest: sweeping L
       trades waiting for speed. *)
    for l = k to m do
      let pool = List.filteri (fun i _ -> i < l) by_free in
      let chosen =
        List.sort (fun a b -> compare (speeds.(b), a) (speeds.(a), b)) pool
        |> List.filteri (fun i _ -> i < k)
      in
      let start =
        List.fold_left (fun acc q -> Float.max acc free_at.(q)) job.release chosen
      in
      let duration = p /. min_speed speeds chosen in
      let completion = start +. duration in
      match !best with
      | Some (c, _, _, _) when c <= completion -> ()
      | _ -> best := Some (completion, chosen, start, duration)
    done;
    match !best with
    | None -> assert false
    | Some (completion, chosen, start, duration) ->
      List.iter (fun q -> free_at.(q) <- completion) chosen;
      placements := { job_id = job.id; procs = chosen; start; duration } :: !placements
  in
  List.iter place (List.sort order allocated);
  let makespan =
    List.fold_left (fun acc p -> Float.max acc (p.start +. p.duration)) 0.0 !placements
  in
  { speeds; placements = List.rev !placements; makespan }

let makespan_lower_bound ~speeds allocated =
  let total_speed = Array.fold_left ( +. ) 0.0 speeds in
  let fastest = Array.fold_left Float.max 0.0 speeds in
  let area =
    List.fold_left (fun acc ((j : Job.t), k) -> acc +. Job.work_on j k) 0.0 allocated
  in
  let critical =
    List.fold_left
      (fun acc ((j : Job.t), k) -> Float.max acc (j.release +. (Job.time_on j k /. fastest)))
      0.0 allocated
  in
  Float.max (area /. total_speed) critical

let validate t jobs =
  let eps = 1e-6 in
  let m = Array.length t.speeds in
  let by_id = Hashtbl.create 16 in
  List.iter (fun (j : Job.t) -> Hashtbl.replace by_id j.id j) jobs;
  let seen = Hashtbl.create 16 in
  let placement_ok (p : placement) =
    match Hashtbl.find_opt by_id p.job_id with
    | None -> false
    | Some job ->
      let fresh = not (Hashtbl.mem seen p.job_id) in
      Hashtbl.replace seen p.job_id ();
      let k = List.length p.procs in
      let distinct = List.length (List.sort_uniq compare p.procs) = k in
      let in_range = List.for_all (fun q -> q >= 0 && q < m) p.procs in
      let expected = Job.time_on job k /. min_speed t.speeds p.procs in
      fresh && distinct && in_range
      && Job.can_run_on job k
      && Float.abs (p.duration -. expected) <= eps *. Float.max 1.0 expected
      && p.start >= job.release -. eps
  in
  let placements_ok = List.for_all placement_ok t.placements in
  let all_placed = List.for_all (fun (j : Job.t) -> Hashtbl.mem seen j.id) jobs in
  let exclusive =
    List.for_all
      (fun q ->
        let intervals =
          List.filter (fun p -> List.mem q p.procs) t.placements
          |> List.map (fun p -> (p.start, p.start +. p.duration))
          |> List.sort compare
        in
        let rec scan = function
          | (_, e1) :: ((s2, _) :: _ as rest) -> s2 >= e1 -. eps && scan rest
          | _ -> true
        in
        scan intervals)
      (List.init m Fun.id)
  in
  placements_ok && all_placed && exclusive
