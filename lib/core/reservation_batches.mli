(** Batch scheduling around advance reservations (§5.1,
    "Reservations": "A batch algorithm could try to ensure that batch
    boundaries match the beginning and the end of the reservations").

    The time axis is cut at every reservation boundary; each window is
    a batch with the capacity left over by the active reservations.
    Within a window, pending moldable jobs are packed greedily by
    weight density with their canonical allocation for the window
    length (the bi-criteria dual procedure), and leftovers spill to
    the next window.  After the last boundary the window is unbounded
    and everything remaining is scheduled by MRT.

    The paper suspects this "would likely be inefficient"; the
    A-reservations ablation quantifies it against plain conservative
    backfilling around the same reservations. *)

open Psched_workload

val schedule :
  m:int ->
  reservations:Psched_platform.Reservation.t list ->
  Job.t list ->
  Psched_sim.Schedule.t
(** Off-line: release dates are honoured (a job only enters windows
    after its release).
    @raise Invalid_argument if a job cannot run on [m] processors, or
    if the reservations are infeasible on [m]. *)

val windows :
  m:int -> reservations:Psched_platform.Reservation.t list -> (float * float * int) list
(** The batch windows: (start, stop, capacity) with stop = infinity
    for the final one — exposed for tests. *)
