open Psched_workload
open Psched_sim
module R = Psched_platform.Resource
module Obs = Psched_obs.Obs

(* Multi-resource ports of the two workhorse rigid policies, following
   Perotin–Sun–Raghavan's multi-resource list scheduling: a job starts
   only when every component of its request vector (cores, memory,
   bandwidth) fits the free vector of every overlapping segment of the
   {!Rprofile} timeline.

   Both functions are deliberate line-for-line ports of their scalar
   counterparts ({!Packing.list_schedule}, {!Backfilling.easy}) with
   the scalar procs capacity replaced by the vector: on an unbounded
   capacity with zero non-core demands they produce bit-identical
   schedules (property-tested on 1000 random instances), which is what
   lets the registry expose them next to the scalar policies without a
   compatibility split.

   Precondition (checked as a typed [Over_resource]/[Too_wide] error by
   the {!Schedulers} adapters, the only sanctioned entry point): every
   job's minimal request fits [cap]. *)

let request (job : Job.t) procs = Job.request job ~procs

let fcfs ((a : Job.t), _) ((b : Job.t), _) = compare (a.release, a.id) (b.release, b.id)

let seed_reservations ~cap reservations =
  let profile = Rprofile.create cap in
  List.iter
    (fun (r : Psched_platform.Reservation.t) ->
      Rprofile.reserve profile ~start:r.start ~duration:r.duration ~req:(R.of_cores r.procs))
    reservations;
  profile

let list_schedule ?(order = fcfs) ?(reservations = []) ~cap allocated =
  let profile = seed_reservations ~cap reservations in
  let sorted = List.sort order allocated in
  let entries =
    List.map
      (fun ((job : Job.t), procs) ->
        let duration = Job.time_on job procs in
        let start =
          Rprofile.place profile ~earliest:(Float.max job.release 0.0) ~duration
            ~req:(request job procs)
        in
        Schedule.entry ~job ~start ~procs ())
      sorted
  in
  Schedule.make ~m:cap.R.cores entries

let easy ?(obs = Obs.null) ?(reservations = []) ~cap allocated =
  let profile = seed_reservations ~cap reservations in
  let entries = ref [] in
  (* Queue in FCFS (release, id) order; jobs enter at their release. *)
  let by_fcfs ((a : Job.t), _) ((b : Job.t), _) = compare (a.release, a.id) (b.release, b.id) in
  let pending = ref (List.sort by_fcfs allocated) in
  let queue = ref [] (* arrived, not started, FCFS order *) in
  let events = Psched_util.Heap.create ~cmp:compare in
  List.iter (fun ((j : Job.t), _) -> Psched_util.Heap.add events j.release) !pending;
  (* Reservation boundaries are wake-up points too. *)
  List.iter
    (fun (r : Psched_platform.Reservation.t) ->
      Psched_util.Heap.add events r.start;
      Psched_util.Heap.add events (Psched_platform.Reservation.finish r))
    reservations;
  let eps = 1e-9 in
  let sim_now = ref 0.0 in
  if Obs.enabled obs then Obs.set_clock obs (fun () -> !sim_now);
  let start_job now ((job : Job.t), procs) =
    let duration = Job.time_on job procs in
    if duration > 0.0 then Rprofile.reserve profile ~start:now ~duration ~req:(request job procs);
    entries := Schedule.entry ~job ~start:now ~procs () :: !entries;
    if Obs.enabled obs then begin
      Obs.job_start obs ~job:job.Job.id ~start:now ~procs;
      Obs.queue_wait obs ~job:job.Job.id ~wait:(now -. job.Job.release);
      Obs.Counter.incr obs "backfill/started"
    end;
    Psched_util.Heap.add events (now +. duration)
  in
  let starts_now now ((job : Job.t), procs) =
    let duration = Job.time_on job procs in
    match Rprofile.find_start profile ~earliest:now ~duration ~req:(request job procs) with
    | s -> s <= now +. eps
    | exception Not_found -> false
  in
  let rec drain_head now =
    match !queue with
    | (((hjob : Job.t), _) as head) :: rest when starts_now now head ->
      if Obs.enabled obs then Obs.prov_choice obs ~job:hjob.Job.id ~chosen:"head";
      start_job now head;
      queue := rest;
      drain_head now
    | _ -> ()
  in
  let backfill now =
    match !queue with
    | [] | [ _ ] -> ()
    | ((hjob : Job.t), hprocs) :: rest ->
      Obs.span obs "easy-mr.backfill" @@ fun () ->
      (* Hold the head's earliest reservation — on the full vector, so a
         backfilled job can steal neither the head's cores nor its
         memory or bandwidth. *)
      let hreq = request hjob hprocs in
      let hdur = Job.time_on hjob hprocs in
      let hstart = Rprofile.find_start profile ~earliest:now ~duration:hdur ~req:hreq in
      if hdur > 0.0 then Rprofile.reserve profile ~start:hstart ~duration:hdur ~req:hreq;
      if Obs.enabled obs then Obs.prov_reserve obs ~job:hjob.Job.id ~start:hstart ~procs:hprocs;
      let kept =
        List.filter
          (fun ((job : Job.t), procs) ->
            if starts_now now (job, procs) then begin
              if Obs.enabled obs then begin
                Obs.prov_choice obs ~job:job.Job.id ~chosen:"backfill";
                Obs.backfill_fill obs ~job:job.Job.id ~start:now ~procs;
                Obs.Counter.incr obs "backfill/filled"
              end;
              start_job now (job, procs);
              false
            end
            else begin
              if Obs.enabled obs then begin
                let duration = Job.time_on job procs in
                let at =
                  Obs.span obs "easy-mr.query" @@ fun () ->
                  match
                    Rprofile.find_start profile ~earliest:now ~duration ~req:(request job procs)
                  with
                  | s -> s
                  | exception Not_found -> infinity
                in
                Obs.backfill_hole obs ~job:job.Job.id ~start:at ~procs;
                Obs.prov_reject obs ~job:job.Job.id ~reason:"would_delay_head";
                Obs.Counter.incr obs "backfill/hole_probes"
              end;
              true
            end)
          rest
      in
      if hdur > 0.0 then Rprofile.release profile ~start:hstart ~duration:hdur ~req:hreq;
      queue := (hjob, hprocs) :: kept
  in
  let step now =
    let arrived, still =
      List.partition (fun ((j : Job.t), _) -> j.release <= now +. eps) !pending
    in
    pending := still;
    queue := !queue @ arrived;
    drain_head now;
    backfill now
  in
  let last = ref neg_infinity in
  let rec loop () =
    match Psched_util.Heap.pop events with
    | None -> ()
    | Some t ->
      if t > !last +. eps then begin
        last := t;
        sim_now := t;
        step t
      end;
      loop ()
  in
  Obs.span obs "easy-mr" loop;
  assert (!queue = [] && !pending = []);
  Schedule.make ~m:cap.R.cores !entries
