(** Due dates: tardiness scheduling and admission control (§3's
    tardiness and rejection criteria).

    - {!edd}: Earliest Due Date ordering with conservative
      (earliest-fit) placement — the classical heuristic against
      maximum tardiness;
    - {!with_admission}: same, but a job whose placement would finish
      after its due date is {e rejected} instead of scheduled — the §3
      "rejection of tasks" criterion; rejected work can be resubmitted
      elsewhere (e.g. through the grid layer). *)

open Psched_workload

val edd : m:int -> Packing.allocated list -> Psched_sim.Schedule.t
(** Jobs without a due date sort last (due = +infinity), FCFS among
    themselves. *)

type outcome = {
  schedule : Psched_sim.Schedule.t;
  accepted : Job.t list;
  rejected : Job.t list;
}

val with_admission : m:int -> Packing.allocated list -> outcome
(** EDD order; each job is tentatively placed at its earliest start
    and kept only if it meets its due date (jobs without one are
    always kept).  The returned schedule contains accepted jobs only
    and is guaranteed tardiness-free on jobs with due dates. *)
