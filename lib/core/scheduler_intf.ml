(** The unified scheduler API.

    Every policy in this library historically exposed a
    differently-shaped entry point (allocated lists, rigid-only jobs,
    strategy records, functors).  [Scheduler_intf] is the common
    contract the {!Schedulers} registry adapts them all to:

    {[ run : ctx -> Job.t list -> (outcome, error) result ]}

    so [psched], [bench], the grid layers and the experiments select
    policies {e by name} and instrument them {e uniformly} through the
    [ctx]'s observability handle.  Precondition violations (release
    dates a policy cannot honour, jobs wider than the machine, ...)
    come back as typed {!error}s instead of [Invalid_argument]
    escapes. *)

open Psched_workload

(** How a policy treats release dates it cannot honour natively. *)
type release_policy =
  | Honour  (** keep release dates; error if the policy is off-line-only *)
  | Zero  (** strip release dates before scheduling (off-line view) *)

(** A-priori allocation rule turning moldable jobs rigid for the
    rigid-only policies (EASY, SMART, queue disciplines, ...). *)
type alloc_policy =
  | Alloc_work_bounded of float
      (** fastest allocation within (1+delta) of minimal work *)
  | Alloc_fastest
  | Alloc_thriftiest
  | Alloc_min  (** each job's minimal feasible allocation *)

type ctx = {
  m : int;  (** processors (the cores component of [cap]) *)
  cap : Psched_platform.Resource.t;
      (** full capacity vector; non-core components default to
          unbounded, which is the degenerate processors-only platform:
          every scalar policy ignores them and the multi-resource
          policies reduce to their scalar counterparts bit-identically *)
  obs : Psched_obs.Obs.t;  (** observability handle; {!Psched_obs.Obs.null} = off *)
  reservations : Psched_platform.Reservation.t list;
      (** advance reservations, honoured by the policies that support
          them (EASY, conservative, reservation-batches) *)
  releases : release_policy;
  alloc : alloc_policy;
  epsilon : float;  (** dual-search precision for MRT-based policies *)
}

let ctx ?(obs = Psched_obs.Obs.null) ?(reservations = []) ?(releases = Honour)
    ?(alloc = Alloc_work_bounded 0.25) ?(epsilon = 0.01) ?cap ~m () =
  if m < 1 then invalid_arg "Scheduler_intf.ctx: m must be >= 1";
  (* [m] stays the source of truth for the cores component so every
     historic [ctx ~m ()] call site keeps its exact meaning. *)
  let cap =
    match cap with
    | None -> Psched_platform.Resource.cap ~cores:m ()
    | Some c -> Psched_platform.Resource.with_cores c m
  in
  { m; cap; obs; reservations; releases; alloc; epsilon }

type error =
  | Needs_zero_releases of { policy : string; job : int; release : float }
      (** the policy is off-line-only and [ctx.releases = Honour]
          found a positive release date *)
  | Too_wide of { policy : string; job : int; procs : int; m : int }
      (** a job cannot fit on the machine *)
  | Unsupported_shape of { policy : string; job : int; reason : string }
      (** e.g. a divisible load handed to a parallel-task policy *)
  | Needs_reservations of { policy : string }
      (** the policy is only meaningful with reservations *)
  | Over_resource of { policy : string; job : int; resource : string; need : int; capacity : int }
      (** a non-core component of a job's request vector exceeds the
          ctx capacity vector — the multi-resource analogue of
          [Too_wide] *)
  | Failure of { policy : string; reason : string }
      (** caught [Invalid_argument]/[Failure] escape from a policy
          body: kept as data so callers never need exception handlers *)

let error_to_string = function
  | Needs_zero_releases { policy; job; release } ->
    Printf.sprintf "%s: job %d has release date %g (off-line policy; use releases=Zero)" policy
      job release
  | Too_wide { policy; job; procs; m } ->
    Printf.sprintf "%s: job %d needs %d processors but the machine has %d" policy job procs m
  | Unsupported_shape { policy; job; reason } ->
    Printf.sprintf "%s: job %d has an unsupported shape (%s)" policy job reason
  | Needs_reservations { policy } -> Printf.sprintf "%s: requires reservations in the ctx" policy
  | Over_resource { policy; job; resource; need; capacity } ->
    Printf.sprintf "%s: job %d requests %d %s but the platform has %d" policy job need resource
      capacity
  | Failure { policy; reason } -> Printf.sprintf "%s: %s" policy reason

(** Per-run digest, computed once by the adapter. *)
type stats = {
  jobs : int;  (** submitted *)
  scheduled : int;  (** placed in the returned schedule *)
  makespan : float;
  total_work : float;  (** processor-seconds *)
  utilisation : float;
  obs_events : int;  (** trace events retained for this run *)
}

type outcome = {
  schedule : Psched_sim.Schedule.t;
  stats : stats;
  trace : Psched_obs.Trace.summary option;
      (** [Some] iff the ctx carried an enabled handle *)
}

type run = ctx -> Job.t list -> (outcome, error) result

module type S = sig
  val name : string
  (** Registry key, e.g. ["mrt"], ["easy"], ["wsjf"]. *)

  val doc : string
  (** One-line description shown by [psched policies]. *)

  val run : run
  (** Never raises on malformed input: precondition violations are
      {!error}s. *)
end

(* Shared by every adapter in {!Schedulers}. *)
let outcome_of_schedule ~ctx ~jobs (schedule : Psched_sim.Schedule.t) =
  let stats =
    {
      jobs = List.length jobs;
      scheduled = List.length schedule.Psched_sim.Schedule.entries;
      makespan = Psched_sim.Schedule.makespan schedule;
      total_work = Psched_sim.Schedule.total_work schedule;
      utilisation = Psched_sim.Schedule.utilisation schedule;
      obs_events =
        (if Psched_obs.Obs.enabled ctx.obs then List.length (Psched_obs.Obs.events ctx.obs)
         else 0);
    }
  in
  let trace =
    if Psched_obs.Obs.enabled ctx.obs then Some (Psched_obs.Trace.summarize ctx.obs) else None
  in
  { schedule; stats; trace }
