open Psched_util

type width = Machine | Cluster of int | Uniform of int

let draw_width rng = function
  | Machine -> 1
  | Cluster m ->
    if m < 1 then invalid_arg "Generator: Cluster width must be positive";
    m
  | Uniform max_procs ->
    if max_procs < 1 then invalid_arg "Generator: Uniform width must be positive";
    1 + Rng.int rng max_procs

let draw_duration rng ~mean_duration = Float.max (Rng.exp_mean rng mean_duration) 1e-3

let poisson rng ~horizon ~rate ~mean_duration ~width ?(cluster = 0) () =
  if rate <= 0.0 then []
  else begin
    let clock = ref 0.0 in
    let out = ref [] in
    let continue = ref true in
    while !continue do
      (* Inter-arrivals are rate-parameterised, durations are
         mean-parameterised: see the convention note in Rng. *)
      clock := !clock +. Rng.exponential rng rate;
      if !clock >= horizon then continue := false
      else begin
        let duration = draw_duration rng ~mean_duration in
        let procs = draw_width rng width in
        out := Outage.make ~cluster ~start:!clock ~duration ~procs () :: !out
      end
    done;
    List.rev !out
  end

let weibull rng ~horizon ~shape ~scale ~mean_duration ~width ?(cluster = 0) () =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Generator.weibull: non-positive parameter";
  let clock = ref 0.0 in
  let out = ref [] in
  let continue = ref true in
  while !continue do
    clock := !clock +. Rng.weibull rng ~shape ~scale;
    if !clock >= horizon then continue := false
    else begin
      let duration = draw_duration rng ~mean_duration in
      let procs = draw_width rng width in
      out := Outage.make ~cluster ~start:!clock ~duration ~procs () :: !out
    end
  done;
  List.rev !out

let bursts rng ~horizon ~burst_rate ~mean_size ~spread ~mean_duration ~width ?(cluster = 0) () =
  if mean_size < 1.0 then invalid_arg "Generator.bursts: mean_size must be >= 1";
  if spread < 0.0 then invalid_arg "Generator.bursts: negative spread";
  let clock = ref 0.0 in
  let out = ref [] in
  let continue = ref true in
  while !continue do
    clock := !clock +. Rng.exponential rng burst_rate;
    if !clock >= horizon then continue := false
    else begin
      (* Burst size is 1 + Geometric(p) with mean [mean_size]: a
         correlated cascade of near-simultaneous failures (shared
         PDU/switch/cooling), the regime where immediate resubmission
         keeps dying and backoff earns its keep. *)
      let p = 1.0 /. mean_size in
      let size =
        let n = ref 1 in
        while Rng.float rng 1.0 >= p do incr n done;
        !n
      in
      for _ = 1 to size do
        let start = !clock +. Rng.float rng (Float.max spread 1e-9) in
        if start < horizon then begin
          let duration = draw_duration rng ~mean_duration in
          let procs = draw_width rng width in
          out := Outage.make ~cluster ~start ~duration ~procs () :: !out
        end
      done
    end
  done;
  Outage.by_start !out

let per_cluster rng ~grid ~gen =
  List.concat_map
    (fun (c : Psched_platform.Platform.cluster) ->
      let stream = Rng.split rng in
      gen stream ~cluster:c.Psched_platform.Platform.id
        ~capacity:(Psched_platform.Platform.processors c))
    grid.Psched_platform.Platform.clusters
  |> Outage.by_start
