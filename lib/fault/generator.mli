(** Fault generators: seed-deterministic outage processes.

    Three failure regimes, all pure functions of the supplied
    generator state:

    - {!poisson}: memoryless node failures (constant hazard), the
      classical MTBF model.
    - {!weibull}: Weibull inter-failure times; [shape < 1] matches the
      infant-mortality-heavy traces observed on production HPC
      platforms.
    - {!bursts}: correlated burst outages — failure epochs arrive as a
      Poisson process, each bringing a geometric cascade of
      near-simultaneous outages (a shared power/network/cooling domain
      dying), spread over a short window.

    Widths are scoped {!Machine} (one processor — per-machine faults),
    {!Cluster} (the whole cluster at once — site outage) or
    {!Uniform} (uniform in [\[1, max\]], partial blade/chassis loss). *)

type width =
  | Machine  (** single-processor outages *)
  | Cluster of int  (** the whole cluster ([capacity] processors) at once *)
  | Uniform of int  (** uniform width in [\[1, max\]] *)

val draw_width : Psched_util.Rng.t -> width -> int

val poisson :
  Psched_util.Rng.t ->
  horizon:float ->
  rate:float ->
  mean_duration:float ->
  width:width ->
  ?cluster:int ->
  unit ->
  Outage.t list
(** Poisson arrivals at [rate] outages per second until [horizon];
    exponential durations with the given mean (floored at 1e-3). *)

val weibull :
  Psched_util.Rng.t ->
  horizon:float ->
  shape:float ->
  scale:float ->
  mean_duration:float ->
  width:width ->
  ?cluster:int ->
  unit ->
  Outage.t list
(** Weibull([shape], [scale]) inter-arrival times; mean inter-arrival
    is [scale * Gamma(1 + 1/shape)]. *)

val bursts :
  Psched_util.Rng.t ->
  horizon:float ->
  burst_rate:float ->
  mean_size:float ->
  spread:float ->
  mean_duration:float ->
  width:width ->
  ?cluster:int ->
  unit ->
  Outage.t list
(** Burst epochs at [burst_rate] per second; each epoch spawns
    [1 + Geometric] outages (mean [mean_size]) offset uniformly within
    [spread] seconds.  Result sorted by start. *)

val per_cluster :
  Psched_util.Rng.t ->
  grid:Psched_platform.Platform.t ->
  gen:(Psched_util.Rng.t -> cluster:int -> capacity:int -> Outage.t list) ->
  Outage.t list
(** Run one generator per grid cluster on split (independent) streams
    and merge the results sorted by start. *)
