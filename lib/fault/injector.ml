open Psched_workload
open Psched_sim

type config = {
  m : int;
  outages : Outage.t list;
  policy : Recovery.policy;
  backoff : Recovery.backoff option;
}

type outcome = {
  schedule : Schedule.t;
  completed : int;
  lost : int;
  kills : int;
  restarts : int;
  checkpoints : int;
  useful_work : float;
  wasted_work : float;
  checkpoint_overhead : float;
  goodput : float;
  makespan : float;
}

(* One logical job, carried across kill/resubmit attempts. *)
type rstate = {
  job : Job.t;
  procs : int;
  total : float;  (* useful seconds on this allocation *)
  mutable salvaged : float;  (* useful seconds secured by checkpoints *)
  mutable attempts : int;  (* kills suffered so far *)
  mutable started : float;  (* start of the current attempt *)
  mutable runtime : float;  (* planned wall time of the current attempt *)
  mutable ck_planned : int;  (* checkpoints the current attempt will write *)
  mutable handle : Engine.handle option;  (* pending completion event *)
}

let eps = 1e-9

module Obs = Psched_obs.Obs

let run ?(obs = Obs.null) config jobs =
  Outage.validate config.outages;
  List.iter
    (fun ((j : Job.t), k) ->
      if k > config.m then
        invalid_arg (Printf.sprintf "Injector.run: job %d wider than %d" j.id config.m))
    jobs;
  let profile = Outage.free_profile ~m:config.m config.outages in
  let e = Engine.create ~obs () in
  let waiting = ref [] (* FCFS; killed jobs requeue at the back *) in
  let running = ref [] in
  let entries = ref [] in
  let completed = ref 0 and lost = ref 0 in
  let kills = ref 0 and restarts = ref 0 and checkpoints = ref 0 in
  let useful = ref 0.0 and wasted = ref 0.0 and overhead = ref 0.0 in
  let cap now = Profile.free_at profile now in
  let used () = List.fold_left (fun acc r -> acc + r.procs) 0 !running in
  (* Wall time and checkpoint count of an attempt that still owes
     [remaining] useful seconds: a checkpoint after each full period of
     compute, none after the final (possibly partial) segment. *)
  let plan remaining =
    match config.policy with
    | Recovery.Checkpoint { period; _ } ->
      max 0 (int_of_float (Float.ceil ((remaining -. eps) /. period)) - 1)
    | Recovery.Drop | Recovery.Restart -> 0
  in
  let complete now r =
    (match r.handle with Some h -> Engine.cancel e h | None -> ());
    r.handle <- None;
    running := List.filter (fun x -> x != r) !running;
    entries :=
      {
        Schedule.job_id = r.job.Job.id;
        start = r.started;
        duration = now -. r.started;
        procs = r.procs;
        cluster = 0;
      }
      :: !entries;
    incr completed;
    if Obs.enabled obs then begin
      Obs.job_complete obs ~job:r.job.Job.id ~finish:now;
      Obs.Counter.incr obs "fault/completed"
    end;
    useful := !useful +. (r.total *. float_of_int r.procs);
    checkpoints := !checkpoints + r.ck_planned;
    (match config.policy with
    | Recovery.Checkpoint { cost; _ } ->
      overhead := !overhead +. (float_of_int r.ck_planned *. cost *. float_of_int r.procs)
    | _ -> ())
  in
  let rec drain now =
    match !waiting with
    | r :: rest when used () + r.procs <= cap now ->
      waiting := rest;
      start now r;
      drain now
    | _ -> ()
  and start now r =
    let remaining = Float.max (r.total -. r.salvaged) 0.0 in
    r.started <- now;
    if remaining <= eps then begin
      (* Everything already checkpointed: the resumed run is a no-op. *)
      r.ck_planned <- 0;
      r.runtime <- 0.0;
      running := r :: !running;
      complete now r
    end
    else begin
      let n_ck = plan remaining in
      let ck_cost =
        match config.policy with Recovery.Checkpoint { cost; _ } -> cost | _ -> 0.0
      in
      r.ck_planned <- n_ck;
      r.runtime <- remaining +. (float_of_int n_ck *. ck_cost);
      running := r :: !running;
      if Obs.enabled obs then begin
        Obs.job_start obs ~job:r.job.Job.id ~start:now ~procs:r.procs;
        if r.attempts > 0 then Obs.Counter.incr obs "fault/attempt_restarts"
      end;
      r.handle <- Some (Engine.schedule e (now +. r.runtime) (fun () -> finish r))
    end
  and finish r =
    let now = Engine.now e in
    if List.memq r !running then begin
      complete now r;
      drain now
    end
  in
  let kill now r =
    (match r.handle with Some h -> Engine.cancel e h | None -> ());
    r.handle <- None;
    running := List.filter (fun x -> x != r) !running;
    incr kills;
    if Obs.enabled obs then begin
      Obs.fault obs ~kind:"fault.kill" ~job:r.job.Job.id;
      Obs.Counter.incr obs "fault/kills"
    end;
    r.attempts <- r.attempts + 1;
    let elapsed = now -. r.started in
    let procs = float_of_int r.procs in
    (match config.policy with
    | Recovery.Checkpoint { period; cost } ->
      let cycle = period +. cost in
      let written = min r.ck_planned (int_of_float ((elapsed +. eps) /. cycle)) in
      if written > 0 && Obs.enabled obs then begin
        Obs.fault obs ~kind:"fault.checkpoint" ~job:r.job.Job.id;
        Obs.Counter.add obs "fault/checkpoints" (float_of_int written)
      end;
      checkpoints := !checkpoints + written;
      overhead := !overhead +. (float_of_int written *. cost *. procs);
      wasted := !wasted +. (Float.max (elapsed -. (float_of_int written *. cycle)) 0.0 *. procs);
      r.salvaged <- r.salvaged +. (float_of_int written *. period)
    | Recovery.Drop | Recovery.Restart -> wasted := !wasted +. (elapsed *. procs));
    match config.policy with
    | Recovery.Drop -> incr lost
    | Recovery.Restart | Recovery.Checkpoint _ ->
      incr restarts;
      if Obs.enabled obs then begin
        Obs.fault obs ~kind:"fault.restart" ~job:r.job.Job.id;
        Obs.Counter.incr obs "fault/restarts"
      end;
      let requeue () = waiting := !waiting @ [ r ] in
      (match config.backoff with
      | None -> requeue ()
      | Some b ->
        let delay = Recovery.delay b ~attempt:r.attempts in
        if delay <= 0.0 then requeue ()
        else
          Engine.at e (now +. delay)
            (fun () ->
              requeue ();
              drain (Engine.now e)))
  in
  (* Outage edges: complete runs due at this very instant first (they
     no longer hold processors), then kill youngest-first until the
     survivors fit, then refill. *)
  let react () =
    let now = Engine.now e in
    List.iter (complete now)
      (List.filter (fun r -> r.started +. r.runtime <= now +. eps) !running);
    let c = cap now in
    while used () > c do
      match
        List.sort (fun a b -> compare (b.started, b.job.Job.id) (a.started, a.job.Job.id))
          !running
      with
      | [] -> assert false
      | victim :: _ -> kill now victim
    done;
    drain now
  in
  List.iter
    (fun (o : Outage.t) ->
      Engine.at e o.Outage.start
        (fun () ->
          if Obs.enabled obs then
            Obs.outage obs ~up:false ~at:o.Outage.start ~procs:o.Outage.procs;
          react ());
      Engine.at e (Outage.finish o)
        (fun () ->
          if Obs.enabled obs then
            Obs.outage obs ~up:true ~at:(Outage.finish o) ~procs:o.Outage.procs;
          react ()))
    config.outages;
  List.iter
    (fun ((j : Job.t), procs) ->
      let r =
        {
          job = j;
          procs;
          total = Job.time_on j procs;
          salvaged = 0.0;
          attempts = 0;
          started = 0.0;
          runtime = 0.0;
          ck_planned = 0;
          handle = None;
        }
      in
      Engine.at e j.Job.release
        (fun () ->
          waiting := !waiting @ [ r ];
          drain (Engine.now e)))
    (List.sort (fun ((a : Job.t), _) ((b : Job.t), _) -> compare (a.release, a.id) (b.release, b.id))
       jobs);
  Obs.span obs "fault.replay" (fun () -> Engine.run e);
  assert (!waiting = [] && !running = []);
  let schedule = Schedule.make ~m:config.m (List.rev !entries) in
  let denom = !useful +. !wasted +. !overhead in
  {
    schedule;
    completed = !completed;
    lost = !lost;
    kills = !kills;
    restarts = !restarts;
    checkpoints = !checkpoints;
    useful_work = !useful;
    wasted_work = !wasted;
    checkpoint_overhead = !overhead;
    goodput = (if denom <= 0.0 then 1.0 else !useful /. denom);
    makespan = Schedule.makespan schedule;
  }
