open Psched_workload
open Psched_sim

type config = {
  m : int;
  outages : Outage.t list;
  policy : Recovery.policy;
  backoff : Recovery.backoff option;
}

type outcome = {
  schedule : Schedule.t;
  completed : int;
  lost : int;
  kills : int;
  restarts : int;
  checkpoints : int;
  useful_work : float;
  wasted_work : float;
  checkpoint_overhead : float;
  goodput : float;
  makespan : float;
}

(* One logical job, carried across kill/resubmit attempts. *)
type rstate = {
  job : Job.t;
  procs : int;
  total : float;  (* useful seconds on this allocation *)
  mutable salvaged : float;  (* useful seconds secured by checkpoints *)
  mutable attempts : int;  (* kills suffered so far *)
  mutable started : float;  (* start of the current attempt *)
  mutable runtime : float;  (* planned wall time of the current attempt *)
  mutable ck_planned : int;  (* checkpoints the current attempt will write *)
  mutable handle : Engine.handle option;  (* pending completion event *)
  mutable active : bool;  (* currently holds processors *)
}

let eps = 1e-9

module Obs = Psched_obs.Obs

let run ?(obs = Obs.null) config jobs =
  Outage.validate config.outages;
  List.iter
    (fun ((j : Job.t), k) ->
      if k > config.m then
        invalid_arg (Printf.sprintf "Injector.run: job %d wider than %d" j.id config.m))
    jobs;
  let profile = Outage.free_profile ~m:config.m config.outages in
  let e = Engine.create ~obs () in
  let waiting = ref [] (* FCFS; killed jobs requeue at the back *) in
  let entries = ref [] in
  let completed = ref 0 and lost = ref 0 in
  let kills = ref 0 and restarts = ref 0 and checkpoints = ref 0 in
  let useful = ref 0.0 and wasted = ref 0.0 and overhead = ref 0.0 in
  let cap now = Profile.free_at profile now in
  (* Running-set bookkeeping is incremental: [used]/[n_running] are
     plain counters, and the two react-time scans (complete whatever is
     due, kill youngest-first) pop lazy-deletion heaps keyed by the
     attempt's start date — an entry is stale once the rstate is no
     longer active or has been restarted with a new start.  This
     replaces the per-step O(|running|) folds and filters. *)
  let used = ref 0 and n_running = ref 0 in
  let by_due =
    (* due ascending; among equal dues, the most recent start first,
       matching the former prepend-ordered running list. *)
    Psched_util.Heap.create ~cmp:(fun (d0, s0, i0, _) (d1, s1, i1, _) ->
        match Float.compare d0 d1 with
        | 0 -> compare (s1, i1) (s0, i0)
        | c -> c)
  in
  let by_start =
    (* youngest (latest start) first; job id breaks start-date ties. *)
    Psched_util.Heap.create ~cmp:(fun (s0, i0, _) (s1, i1, _) ->
        compare (s1, i1) (s0, i0))
  in
  let fresh ~started r = r.active && Float.compare r.started started = 0 in
  let set_running r =
    r.active <- true;
    used := !used + r.procs;
    incr n_running
  in
  let unset_running r =
    r.active <- false;
    used := !used - r.procs;
    decr n_running
  in
  (* Wall time and checkpoint count of an attempt that still owes
     [remaining] useful seconds: a checkpoint after each full period of
     compute, none after the final (possibly partial) segment. *)
  let plan remaining =
    match config.policy with
    | Recovery.Checkpoint { period; _ } ->
      max 0 (int_of_float (Float.ceil ((remaining -. eps) /. period)) - 1)
    | Recovery.Drop | Recovery.Restart -> 0
  in
  let complete now r =
    (match r.handle with Some h -> Engine.cancel e h | None -> ());
    r.handle <- None;
    unset_running r;
    entries :=
      {
        Schedule.job_id = r.job.Job.id;
        start = r.started;
        duration = now -. r.started;
        procs = r.procs;
        cluster = 0;
      }
      :: !entries;
    incr completed;
    if Obs.enabled obs then begin
      Obs.job_complete obs ~job:r.job.Job.id ~finish:now;
      Obs.Counter.incr obs "fault/completed"
    end;
    useful := !useful +. (r.total *. float_of_int r.procs);
    checkpoints := !checkpoints + r.ck_planned;
    (match config.policy with
    | Recovery.Checkpoint { cost; _ } ->
      overhead := !overhead +. (float_of_int r.ck_planned *. cost *. float_of_int r.procs)
    | _ -> ())
  in
  let rec drain now =
    match !waiting with
    | r :: rest when !used + r.procs <= cap now ->
      waiting := rest;
      start now r;
      drain now
    | _ -> ()
  and start now r =
    let remaining = Float.max (r.total -. r.salvaged) 0.0 in
    r.started <- now;
    if remaining <= eps then begin
      (* Everything already checkpointed: the resumed run is a no-op. *)
      r.ck_planned <- 0;
      r.runtime <- 0.0;
      set_running r;
      complete now r
    end
    else begin
      let n_ck = plan remaining in
      let ck_cost =
        match config.policy with Recovery.Checkpoint { cost; _ } -> cost | _ -> 0.0
      in
      r.ck_planned <- n_ck;
      r.runtime <- remaining +. (float_of_int n_ck *. ck_cost);
      set_running r;
      Psched_util.Heap.add by_due (now +. r.runtime, now, r.job.Job.id, r);
      Psched_util.Heap.add by_start (now, r.job.Job.id, r);
      if Obs.enabled obs then begin
        Obs.job_start obs ~job:r.job.Job.id ~start:now ~procs:r.procs;
        if r.attempts > 0 then Obs.Counter.incr obs "fault/attempt_restarts"
      end;
      r.handle <- Some (Engine.schedule e (now +. r.runtime) (fun () -> finish r))
    end
  and finish r =
    let now = Engine.now e in
    if r.active then begin
      complete now r;
      drain now
    end
  in
  let kill now r =
    (match r.handle with Some h -> Engine.cancel e h | None -> ());
    r.handle <- None;
    unset_running r;
    incr kills;
    if Obs.enabled obs then begin
      Obs.fault obs ~kind:"fault.kill" ~job:r.job.Job.id;
      Obs.Counter.incr obs "fault/kills"
    end;
    r.attempts <- r.attempts + 1;
    let elapsed = now -. r.started in
    let procs = float_of_int r.procs in
    (match config.policy with
    | Recovery.Checkpoint { period; cost } ->
      let cycle = period +. cost in
      let written = min r.ck_planned (int_of_float ((elapsed +. eps) /. cycle)) in
      if written > 0 && Obs.enabled obs then begin
        Obs.fault obs ~kind:"fault.checkpoint" ~job:r.job.Job.id;
        Obs.Counter.add obs "fault/checkpoints" (float_of_int written)
      end;
      checkpoints := !checkpoints + written;
      overhead := !overhead +. (float_of_int written *. cost *. procs);
      wasted := !wasted +. (Float.max (elapsed -. (float_of_int written *. cycle)) 0.0 *. procs);
      r.salvaged <- r.salvaged +. (float_of_int written *. period)
    | Recovery.Drop | Recovery.Restart -> wasted := !wasted +. (elapsed *. procs));
    match config.policy with
    | Recovery.Drop -> incr lost
    | Recovery.Restart | Recovery.Checkpoint _ ->
      incr restarts;
      if Obs.enabled obs then begin
        Obs.fault obs ~kind:"fault.restart" ~job:r.job.Job.id;
        Obs.Counter.incr obs "fault/restarts"
      end;
      let requeue () = waiting := !waiting @ [ r ] in
      (match config.backoff with
      | None -> requeue ()
      | Some b ->
        let delay = Recovery.delay b ~attempt:r.attempts in
        if delay <= 0.0 then requeue ()
        else
          Engine.at e (now +. delay)
            (fun () ->
              requeue ();
              drain (Engine.now e)))
  in
  (* Outage edges: complete runs due at this very instant first (they
     no longer hold processors), then kill youngest-first until the
     survivors fit, then refill. *)
  let react () =
    let now = Engine.now e in
    let rec complete_due () =
      match Psched_util.Heap.min by_due with
      | None -> ()
      | Some (due, started, _, r) ->
        if not (fresh ~started r) then begin
          ignore (Psched_util.Heap.pop by_due);
          complete_due ()
        end
        else if due <= now +. eps then begin
          ignore (Psched_util.Heap.pop by_due);
          complete now r;
          complete_due ()
        end
    in
    complete_due ();
    let c = cap now in
    while !used > c do
      match Psched_util.Heap.pop by_start with
      | None -> assert false
      | Some (started, _, victim) -> if fresh ~started victim then kill now victim
    done;
    drain now
  in
  List.iter
    (fun (o : Outage.t) ->
      Engine.at e o.Outage.start
        (fun () ->
          if Obs.enabled obs then
            Obs.outage obs ~up:false ~at:o.Outage.start ~procs:o.Outage.procs;
          react ());
      Engine.at e (Outage.finish o)
        (fun () ->
          if Obs.enabled obs then
            Obs.outage obs ~up:true ~at:(Outage.finish o) ~procs:o.Outage.procs;
          react ()))
    config.outages;
  List.iter
    (fun ((j : Job.t), procs) ->
      let r =
        {
          job = j;
          procs;
          total = Job.time_on j procs;
          salvaged = 0.0;
          attempts = 0;
          started = 0.0;
          runtime = 0.0;
          ck_planned = 0;
          handle = None;
          active = false;
        }
      in
      Engine.at e j.Job.release
        (fun () ->
          waiting := !waiting @ [ r ];
          drain (Engine.now e)))
    (List.sort (fun ((a : Job.t), _) ((b : Job.t), _) -> compare (a.release, a.id) (b.release, b.id))
       jobs);
  Obs.span obs "fault.replay" (fun () -> Engine.run e);
  assert (!waiting = [] && !n_running = 0 && !used = 0);
  let schedule = Schedule.make ~m:config.m (List.rev !entries) in
  let denom = !useful +. !wasted +. !overhead in
  {
    schedule;
    completed = !completed;
    lost = !lost;
    kills = !kills;
    restarts = !restarts;
    checkpoints = !checkpoints;
    useful_work = !useful;
    wasted_work = !wasted;
    checkpoint_overhead = !overhead;
    goodput = (if denom <= 0.0 then 1.0 else !useful /. denom);
    makespan = Schedule.makespan schedule;
  }
