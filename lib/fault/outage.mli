(** Outages: the failure events every fault simulation injects.

    An outage steals [procs] processors of one cluster during
    [\[start, start + duration)] — the §1.1 "versatility" events (nodes
    disappearing and reappearing).  Outages are deliberately shaped
    like {!Psched_platform.Reservation}: a window stealing processors,
    so the standard validator and availability profiles apply.

    Outages may overlap (independent node failures do), and their
    summed width may nominally exceed the cluster: {!free_profile} and
    {!clipped_reservations} cap the loss at the cluster capacity, which
    is the physical reality — at most [m] machines can be down. *)

type t = { start : float; duration : float; procs : int; cluster : int }

val make : ?cluster:int -> start:float -> duration:float -> procs:int -> unit -> t
(** @raise Invalid_argument on non-positive duration/procs or negative
    start.  [cluster] defaults to 0 (single-cluster settings). *)

val finish : t -> float
val active_at : t -> float -> bool

val on_cluster : int -> t list -> t list
(** Outages hitting one cluster. *)

val procs_down_at : t list -> float -> int
(** Nominal (un-clipped) processors down at instant [t]. *)

val fully_down : capacity:int -> t list -> float -> bool
(** The summed outage width covers the whole cluster at [t]. *)

val by_start : t list -> t list
(** Sorted by start date. *)

val validate : t list -> unit
(** @raise Invalid_argument on a malformed outage (defensive re-check
    for records built without {!make}). *)

val as_reservations : ?id_base:int -> t list -> Psched_platform.Reservation.t list
(** Verbatim translation (ids from [id_base], default 1_000_000); may
    oversubscribe the cluster when outages overlap. *)

val clipped_reservations : ?id_base:int -> m:int -> t list -> Psched_platform.Reservation.t list
(** Overlap-aware translation: total stolen width capped at [m] on
    every segment (see {!Psched_platform.Reservation.clip}). *)

val free_profile : m:int -> t list -> Psched_sim.Profile.t
(** Surviving capacity as an availability profile: free processors at
    [t] is [max 0 (m - procs_down_at t)].  Never underflows, whatever
    the overlap structure. *)

val pp : Format.formatter -> t -> unit
