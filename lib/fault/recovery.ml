type checkpoint = { period : float; cost : float }

type policy = Drop | Restart | Checkpoint of checkpoint

let checkpoint ~period ~cost =
  if period <= 0.0 then invalid_arg "Recovery.checkpoint: period must be positive";
  if cost < 0.0 then invalid_arg "Recovery.checkpoint: negative cost";
  Checkpoint { period; cost }

let daly_period ~mtbf ~cost =
  if mtbf <= 0.0 then invalid_arg "Recovery.daly_period: mtbf must be positive";
  if cost <= 0.0 then invalid_arg "Recovery.daly_period: cost must be positive";
  (* Young's first-order optimum; the higher-order Daly correction
     only matters when cost approaches the MTBF, where checkpointing
     is hopeless anyway.  Never checkpoint more often than the write
     itself takes. *)
  Float.max (sqrt (2.0 *. cost *. mtbf)) cost

let daly ~mtbf ~cost = checkpoint ~period:(daly_period ~mtbf ~cost) ~cost

let write_cost ~size_mb ~bandwidth =
  if size_mb < 0 then invalid_arg "Recovery.write_cost: negative size";
  if bandwidth < 1 then invalid_arg "Recovery.write_cost: bandwidth must be >= 1 MB/s";
  float_of_int size_mb /. float_of_int bandwidth

let daly_of_footprint ~mtbf ~size_mb ~bandwidth =
  daly ~mtbf ~cost:(Float.max 1e-9 (write_cost ~size_mb ~bandwidth))

let policy_name = function
  | Drop -> "none"
  | Restart -> "restart"
  | Checkpoint _ -> "checkpoint"

type backoff = { base : float; factor : float; max_delay : float }

let backoff ?(base = 1.0) ?(factor = 2.0) ?(max_delay = 300.0) () =
  if base < 0.0 || factor < 1.0 || max_delay < base then
    invalid_arg "Recovery.backoff: need base >= 0, factor >= 1, max_delay >= base";
  { base; factor; max_delay }

let delay b ~attempt =
  if attempt < 1 then invalid_arg "Recovery.delay: attempt must be >= 1";
  (* Cap the exponent before exponentiating so huge attempt counts
     cannot overflow to infinity. *)
  let exponent = Float.min (float_of_int (attempt - 1)) 64.0 in
  Float.min (b.base *. (b.factor ** exponent)) b.max_delay

type breaker = { threshold : int; window : float; cooloff : float }

let breaker ?(threshold = 5) ?(window = 60.0) ?(cooloff = 120.0) () =
  if threshold < 1 || window <= 0.0 || cooloff <= 0.0 then
    invalid_arg "Recovery.breaker: need threshold >= 1 and positive window/cooloff";
  { threshold; window; cooloff }

type breaker_state = {
  config : breaker;
  mutable recent : float list;  (** kill dates, newest first *)
  mutable open_until : float;  (** submissions blocked before this date *)
  mutable trips : int;
}

let breaker_state config = { config; recent = []; open_until = neg_infinity; trips = 0 }

let record_kill st now =
  let horizon = now -. st.config.window in
  st.recent <- now :: List.filter (fun t -> t > horizon) st.recent;
  if List.length st.recent >= st.config.threshold && now >= st.open_until then begin
    st.open_until <- now +. st.config.cooloff;
    st.trips <- st.trips + 1;
    st.recent <- []
  end

let blocked st now = now < st.open_until
let trips st = st.trips
let blocked_until st = st.open_until
