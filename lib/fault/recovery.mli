(** Recovery policies: what happens to work a fault destroys.

    - {!Drop}: killed work is abandoned — no fault tolerance, the
      lower envelope of every degradation curve.
    - {!Restart}: killed jobs are resubmitted and restart from scratch
      (the library's historical behaviour, kept as baseline).
    - {!Checkpoint}: periodic checkpoint/restart — a killed job
      resumes from its last completed checkpoint; each checkpoint
      write costs [cost] seconds on the job's whole allocation.

    The {!daly} preset picks the Young/Daly first-order optimal period
    [sqrt (2 * cost * mtbf)] from the platform MTBF.

    Orthogonally, {!backoff} delays resubmission exponentially per
    kill (riding out correlated failure bursts) and {!breaker} is a
    per-cluster circuit breaker / blacklist for best-effort streams:
    too many kills in a sliding window opens the breaker and pauses
    submissions for a cool-off period. *)

type checkpoint = { period : float; cost : float }
type policy = Drop | Restart | Checkpoint of checkpoint

val checkpoint : period:float -> cost:float -> policy
(** @raise Invalid_argument on non-positive period or negative cost. *)

val daly_period : mtbf:float -> cost:float -> float
(** Young/Daly optimal checkpoint period, floored at [cost]. *)

val daly : mtbf:float -> cost:float -> policy

val write_cost : size_mb:int -> bandwidth:int -> float
(** Seconds to write a checkpoint of [size_mb] megabytes at [bandwidth]
    MB/s — the physically grounded cost for a job whose memory
    footprint is known (e.g. from its resource vector).
    @raise Invalid_argument on a negative size or bandwidth < 1. *)

val daly_of_footprint : mtbf:float -> size_mb:int -> bandwidth:int -> policy
(** {!daly} with [cost = ]{!write_cost}: the optimal period for a job
    checkpointing its whole memory footprint over the given I/O
    bandwidth. *)

val policy_name : policy -> string
(** ["none" | "restart" | "checkpoint"]. *)

type backoff = { base : float; factor : float; max_delay : float }

val backoff : ?base:float -> ?factor:float -> ?max_delay:float -> unit -> backoff
(** Defaults: 1s base, doubling, capped at 300s. *)

val delay : backoff -> attempt:int -> float
(** Delay before resubmission number [attempt] (1-based):
    [min max_delay (base * factor^(attempt-1))]. *)

type breaker = { threshold : int; window : float; cooloff : float }

val breaker : ?threshold:int -> ?window:float -> ?cooloff:float -> unit -> breaker
(** Defaults: 5 kills within 60s open the breaker for 120s. *)

(** Mutable sliding-window state threaded through a simulation. *)
type breaker_state

val breaker_state : breaker -> breaker_state

val record_kill : breaker_state -> float -> unit
(** Note a kill at the given date; may open the breaker. *)

val blocked : breaker_state -> float -> bool
(** Submissions are currently blocked. *)

val blocked_until : breaker_state -> float
(** Date the current cool-off ends ([neg_infinity] if never tripped). *)

val trips : breaker_state -> int
(** Times the breaker opened so far. *)
