type t = { start : float; duration : float; procs : int; cluster : int }

let make ?(cluster = 0) ~start ~duration ~procs () =
  if procs < 1 then invalid_arg "Outage.make: procs must be positive";
  if duration <= 0.0 then invalid_arg "Outage.make: duration must be positive";
  if start < 0.0 then invalid_arg "Outage.make: start must be non-negative";
  { start; duration; procs; cluster }

let finish o = o.start +. o.duration
let active_at o t = o.start <= t && t < finish o
let on_cluster c outages = List.filter (fun o -> o.cluster = c) outages

let procs_down_at outages t =
  List.fold_left (fun acc o -> if active_at o t then acc + o.procs else acc) 0 outages

let fully_down ~capacity outages t = procs_down_at outages t >= capacity

let by_start outages =
  List.sort (fun a b -> compare (a.start, a.duration, a.procs) (b.start, b.duration, b.procs))
    outages

let as_reservations ?(id_base = 1_000_000) outages =
  List.mapi
    (fun i o ->
      Psched_platform.Reservation.make ~id:(id_base + i) ~start:o.start ~duration:o.duration
        ~procs:o.procs)
    outages

let clipped_reservations ?(id_base = 1_000_000) ~m outages =
  Psched_platform.Reservation.clip ~id_base ~m (as_reservations ~id_base outages)

let free_profile ~m outages =
  let p = Psched_sim.Profile.create m in
  List.iter
    (fun (r : Psched_platform.Reservation.t) ->
      if r.duration > 0.0 then
        Psched_sim.Profile.reserve p ~start:r.start ~duration:r.duration ~procs:r.procs)
    (clipped_reservations ~m outages);
  p

let validate outages =
  List.iter
    (fun o ->
      if o.procs < 1 || o.duration <= 0.0 || o.start < 0.0 then
        invalid_arg "Outage.validate: malformed outage")
    outages

let pp ppf o =
  Format.fprintf ppf "outage [%g, %g) x%d procs (cluster %d)" o.start (finish o) o.procs
    o.cluster
