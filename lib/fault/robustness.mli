(** Robustness metrics: the degradation table answering "which policy
    survives which failure regime?" quantitatively.

    {!degradation} sweeps a grid of outage rates crossed with the
    recovery policies (no fault tolerance / restart-from-scratch /
    checkpoint-restart at the Young-Daly period) and the resubmission
    regimes (with and without exponential backoff), running the same
    seed-deterministic workload through {!Injector} for every cell.
    [bench/main.exe fault-table --json] records it to [BENCH_2.json]. *)

type row = {
  rate : float;  (** outage arrival rate (per second) *)
  policy : string;  (** "none" | "restart" | "checkpoint-daly" *)
  backoff : bool;
  goodput : float;
  useful_work : float;
  wasted_work : float;
  checkpoint_overhead : float;
  kills : int;
  restarts : int;
  checkpoints : int;
  completed : int;
  lost : int;
  makespan : float;
}

type table = {
  seed : int;
  m : int;
  jobs : int;
  horizon : float;
  mean_duration : float;
  checkpoint_cost : float;
  rows : row list;
}

val default_rates : float list
(** [0.002; 0.01; 0.05] outages per second. *)

val degradation :
  ?rates:float list ->
  ?n:int ->
  ?m:int ->
  ?horizon:float ->
  ?mean_duration:float ->
  ?checkpoint_cost:float ->
  ?domains:int ->
  seed:int ->
  unit ->
  table
(** Build the full degradation grid: [rates] x {none, restart,
    checkpoint-daly} x {backoff, no-backoff}.  Deterministic in
    [seed]; each rate draws its outages from an independent stream so
    columns are comparable across runs.  All randomness is drawn before
    the grid replays, so [?domains] (default 1) shards the cells over a
    [Pool] without changing a single row. *)

val find : table -> rate:float -> policy:string -> backoff:bool -> row option

val to_json : table -> string
(** [BENCH_2.json] payload: schema [psched-fault/1], run parameters,
    one object per cell. *)

val to_csv : table -> string
(** Numeric CSV (policy encoded 0=none, 1=restart, 2=checkpoint). *)

val to_string : table -> string
(** Human-readable table for the CLI. *)
