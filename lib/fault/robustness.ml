open Psched_workload
open Psched_sim

type row = {
  rate : float;
  policy : string;
  backoff : bool;
  goodput : float;
  useful_work : float;
  wasted_work : float;
  checkpoint_overhead : float;
  kills : int;
  restarts : int;
  checkpoints : int;
  completed : int;
  lost : int;
  makespan : float;
}

type table = {
  seed : int;
  m : int;
  jobs : int;
  horizon : float;
  mean_duration : float;
  checkpoint_cost : float;
  rows : row list;
}

let row_of_outcome ~rate ~policy ~backoff (o : Injector.outcome) =
  {
    rate;
    policy;
    backoff;
    goodput = o.Injector.goodput;
    useful_work = o.Injector.useful_work;
    wasted_work = o.Injector.wasted_work;
    checkpoint_overhead = o.Injector.checkpoint_overhead;
    kills = o.Injector.kills;
    restarts = o.Injector.restarts;
    checkpoints = o.Injector.checkpoints;
    completed = o.Injector.completed;
    lost = o.Injector.lost;
    makespan = o.Injector.makespan;
  }

let default_rates = [ 0.002; 0.01; 0.05 ]

let degradation ?(rates = default_rates) ?(n = 40) ?(m = 32) ?(horizon = 3000.0)
    ?(mean_duration = 40.0) ?(checkpoint_cost = 1.0) ?(domains = 1) ~seed () =
  if rates = [] then invalid_arg "Robustness.degradation: empty rate list";
  let rng = Psched_util.Rng.create seed in
  let jobs =
    Workload_gen.rigid_uniform rng ~n ~m ~tmin:20.0 ~tmax:120.0
    |> Workload_gen.with_poisson_arrivals rng ~rate:0.1
    |> List.map Psched_core.Packing.allocate_rigid
  in
  (* All randomness is drawn up front, sequentially — every rate gets
     its own deterministic stream so adding or reordering rates never
     perturbs the other columns.  The grid cells that remain are pure
     Injector.run replays, shardable over domains with no effect on the
     rows (merged in input order). *)
  let cells =
    List.concat_map
      (fun (i, rate) ->
        let outage_rng = Psched_util.Rng.create ((seed * 1009) + i) in
        (* A mixed failure process: independent node losses (Poisson,
           partial width) plus correlated burst cascades — the regime
           where immediate resubmission thrashes and backoff pays. *)
        let independent =
          Generator.poisson outage_rng ~horizon ~rate ~mean_duration
            ~width:(Generator.Uniform (max 1 (m / 2)))
            ()
        in
        let correlated =
          Generator.bursts outage_rng ~horizon ~burst_rate:(rate /. 5.0) ~mean_size:4.0
            ~spread:3.0 ~mean_duration:(mean_duration /. 2.0) ~width:Generator.Machine ()
        in
        let outages = Outage.by_start (independent @ correlated) in
        let policies =
          [
            ("none", Recovery.Drop);
            ("restart", Recovery.Restart);
            ("checkpoint-daly", Recovery.daly ~mtbf:(1.0 /. rate) ~cost:checkpoint_cost);
          ]
        in
        List.concat_map
          (fun (name, policy) ->
            List.map (fun backoff -> (rate, outages, name, policy, backoff)) [ false; true ])
          policies)
      (List.mapi (fun i r -> (i, r)) rates)
  in
  let rows =
    Psched_util.Pool.map ~domains
      (fun (rate, outages, name, policy, backoff) ->
        let config =
          {
            Injector.m;
            outages;
            policy;
            backoff =
              (if backoff then Some (Recovery.backoff ~base:5.0 ~max_delay:120.0 ())
               else None);
          }
        in
        row_of_outcome ~rate ~policy:name ~backoff (Injector.run config jobs))
      cells
  in
  { seed; m; jobs = n; horizon; mean_duration; checkpoint_cost; rows }

let find table ~rate ~policy ~backoff =
  List.find_opt
    (fun r -> r.rate = rate && r.policy = policy && r.backoff = backoff)
    table.rows

let header =
  [
    "rate"; "policy"; "backoff"; "goodput"; "useful_work"; "wasted_work"; "checkpoint_overhead";
    "kills"; "restarts"; "checkpoints"; "completed"; "lost"; "makespan";
  ]

let to_csv table =
  let rows =
    List.map
      (fun r ->
        [
          r.rate;
          (match r.policy with "none" -> 0.0 | "restart" -> 1.0 | _ -> 2.0);
          (if r.backoff then 1.0 else 0.0);
          r.goodput;
          r.useful_work;
          r.wasted_work;
          r.checkpoint_overhead;
          float_of_int r.kills;
          float_of_int r.restarts;
          float_of_int r.checkpoints;
          float_of_int r.completed;
          float_of_int r.lost;
          r.makespan;
        ])
      table.rows
  in
  Export.to_csv (Export.Series { header; rows })

let to_json table =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"psched-fault/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" table.seed);
  Buffer.add_string buf (Printf.sprintf "  \"m\": %d,\n" table.m);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" table.jobs);
  Buffer.add_string buf (Printf.sprintf "  \"horizon\": %g,\n" table.horizon);
  Buffer.add_string buf (Printf.sprintf "  \"mean_outage_duration\": %g,\n" table.mean_duration);
  Buffer.add_string buf (Printf.sprintf "  \"checkpoint_cost\": %g,\n" table.checkpoint_cost);
  Buffer.add_string buf "  \"rows\": [\n";
  let n = List.length table.rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"rate\":%g,\"policy\":%s,\"backoff\":%b,\"goodput\":%.6f,\"useful_work\":%.3f,\
            \"wasted_work\":%.3f,\"checkpoint_overhead\":%.3f,\"kills\":%d,\"restarts\":%d,\
            \"checkpoints\":%d,\"completed\":%d,\"lost\":%d,\"makespan\":%.3f}%s\n"
           r.rate
           (Export.json_string r.policy)
           r.backoff r.goodput r.useful_work r.wasted_work r.checkpoint_overhead r.kills
           r.restarts r.checkpoints r.completed r.lost r.makespan
           (if i = n - 1 then "" else ",")))
    table.rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let to_string table =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Degradation table (seed %d, m=%d, %d jobs, outage mean %gs, checkpoint cost %gs)\n"
       table.seed table.m table.jobs table.mean_duration table.checkpoint_cost);
  Buffer.add_string buf
    (Printf.sprintf "%-8s %-16s %-8s %9s %10s %10s %8s %6s %5s %9s\n" "rate" "policy" "backoff"
       "goodput" "wasted" "ck-ovh" "kills" "compl" "lost" "makespan");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-8g %-16s %-8b %9.4f %10.1f %10.1f %8d %6d %5d %9.1f\n" r.rate r.policy
           r.backoff r.goodput r.wasted_work r.checkpoint_overhead r.kills r.completed r.lost
           r.makespan))
    table.rows;
  Buffer.contents buf
