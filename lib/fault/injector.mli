(** The fault injector: one event loop where outages, checkpoints,
    kills, backoff and restarts compose.

    A single cluster of [m] processors runs an allocated rigid
    workload under greedy FCFS dispatch (the {!Psched_grid.Resilience}
    semantics).  Outages shrink the surviving capacity — overlapping
    outages are clipped at [m], see {!Outage.free_profile} — and when
    the running set no longer fits, the youngest runs are killed
    first.  What happens next is the {!Recovery.policy}:

    - [Drop]: the job is lost;
    - [Restart]: resubmitted at the back of the queue, from scratch;
    - [Checkpoint]: resubmitted, resuming after the last completed
      checkpoint; every checkpoint write costs [cost] seconds on the
      job's whole allocation, so a run owing [u] useful seconds takes
      [u + (ceil(u/period) - 1) * cost] wall seconds.

    With a {!Recovery.backoff}, a killed job only re-enters the queue
    after an exponentially growing delay (per its kill count).

    The simulation is driven by {!Psched_sim.Engine}: arrivals, outage
    edges, completions (cancellable on kill) and delayed resubmissions
    are all events of the same loop. *)

type config = {
  m : int;
  outages : Outage.t list;
  policy : Recovery.policy;
  backoff : Recovery.backoff option;
}

type outcome = {
  schedule : Psched_sim.Schedule.t;  (** successful (final) runs only *)
  completed : int;
  lost : int;  (** jobs abandoned (only under [Drop]) *)
  kills : int;  (** kill events *)
  restarts : int;  (** resubmissions performed *)
  checkpoints : int;  (** checkpoint writes (completed ones) *)
  useful_work : float;  (** proc-seconds of completed jobs' real work *)
  wasted_work : float;  (** proc-seconds destroyed by kills *)
  checkpoint_overhead : float;  (** proc-seconds spent writing checkpoints *)
  goodput : float;
      (** [useful / (useful + wasted + overhead)] — the fraction of
          consumed cycles that produced final results; 1.0 for an
          empty run *)
  makespan : float;
}

val run : ?obs:Psched_obs.Obs.t -> config -> (Psched_workload.Job.t * int) list -> outcome
(** With an enabled [obs], every outage edge emits
    ["outage.down"]/["outage.up"], kills emit ["fault.kill"], restarts
    ["fault.restart"], checkpoint salvages ["fault.checkpoint"], and
    attempt starts/completions emit ["job.start"]/["job.complete"];
    counters accumulate under ["fault/"].  Tracing never changes the
    outcome.
    @raise Invalid_argument if a job is wider than [m] or an outage is
    malformed.  Deterministic: a pure function of its arguments. *)
