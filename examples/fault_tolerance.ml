(* Fault injection and recovery policies (the robustness axis of the
   paper's "versatility" discussion, section 1.1).

   Demonstrates:
   - seed-deterministic fault generators (Poisson node failures plus
     correlated burst outages);
   - recovery policies on one cluster: no fault tolerance vs
     restart-from-scratch vs checkpoint/restart at the Young/Daly
     period, with and without exponential-backoff resubmission;
   - the best-effort layer under outages: local jobs stay undisturbed,
     killed grid runs back off, the circuit breaker pauses submission;
   - multi-cluster placement degrading gracefully around a site outage.

   Run with: dune exec examples/fault_tolerance.exe *)

open Psched_workload
module F = Psched_fault
module Pf = Psched_platform.Platform

let () =
  let m = 32 in
  let rng = Psched_util.Rng.create 2718 in
  let jobs =
    Workload_gen.rigid_uniform rng ~n:30 ~m ~tmin:20.0 ~tmax:120.0
    |> Workload_gen.with_poisson_arrivals rng ~rate:0.1
    |> List.map Psched_core.Packing.allocate_rigid
  in
  (* 1. A mixed failure process: independent partial losses plus
     correlated cascades sharing a failure domain. *)
  let fault_rng = Psched_util.Rng.create 54321 in
  let outages =
    F.Outage.by_start
      (F.Generator.poisson fault_rng ~horizon:2500.0 ~rate:0.02 ~mean_duration:40.0
         ~width:(F.Generator.Uniform (m / 2)) ()
      @ F.Generator.bursts fault_rng ~horizon:2500.0 ~burst_rate:0.004 ~mean_size:4.0
          ~spread:3.0 ~mean_duration:20.0 ~width:F.Generator.Machine ())
  in
  Format.printf "%d outages over 2500 s on %d processors@.@." (List.length outages) m;
  (* 2. The policy space on one cluster. *)
  let mtbf = 1.0 /. 0.02 and cost = 1.0 in
  Format.printf "Young/Daly period for mtbf=%.0fs cost=%.0fs: %.1f s@.@." mtbf cost
    (F.Recovery.daly_period ~mtbf ~cost);
  let cells =
    [
      ("none", F.Recovery.Drop, None);
      ("restart", F.Recovery.Restart, None);
      ("restart+backoff", F.Recovery.Restart, Some (F.Recovery.backoff ~base:5.0 ()));
      ("checkpoint-daly", F.Recovery.daly ~mtbf ~cost, None);
    ]
  in
  Format.printf "%-18s %8s %8s %10s %8s %6s@." "policy" "goodput" "kills" "wasted" "ck-ovh"
    "lost";
  List.iter
    (fun (name, policy, backoff) ->
      let o =
        F.Injector.run
          { F.Injector.m; outages; policy; backoff }
          jobs
      in
      Format.printf "%-18s %8.4f %8d %10.1f %8.1f %6d@." name o.F.Injector.goodput
        o.F.Injector.kills o.F.Injector.wasted_work o.F.Injector.checkpoint_overhead
        o.F.Injector.lost)
    cells;
  (* 3. Best-effort under the same outages: the bag is shed first, the
     breaker pauses submission after a kill burst. *)
  let config = { Psched_grid.Best_effort.m; bag = 400; unit_time = 30.0; horizon = 4000.0 } in
  let o =
    Psched_grid.Best_effort.simulate ~outages
      ~backoff:(F.Recovery.backoff ~base:5.0 ~max_delay:120.0 ())
      ~breaker:(F.Recovery.breaker ~threshold:5 ~window:60.0 ~cooloff:180.0 ())
      config ~local:jobs
  in
  Format.printf
    "@.best-effort under outages: completed %d, killed %d (local kills %d), breaker trips %d@."
    o.Psched_grid.Best_effort.grid_completed o.Psched_grid.Best_effort.grid_killed
    o.Psched_grid.Best_effort.local_killed o.Psched_grid.Best_effort.breaker_trips;
  (* 4. A site outage on the CIMENT grid: jobs re-route to survivors. *)
  let grid_jobs =
    List.init 120 (fun id ->
        let community = Psched_util.Rng.int rng 4 in
        let time = Psched_util.Rng.uniform rng 20.0 400.0 in
        let procs = 1 + Psched_util.Rng.int rng 16 in
        Job.rigid ~community ~id ~procs ~time ())
    |> Workload_gen.with_poisson_arrivals rng ~rate:0.05
  in
  let site_down =
    (* Cluster 1 loses every processor for its first hour. *)
    let c = List.nth Pf.ciment.Pf.clusters 1 in
    [ F.Outage.make ~cluster:c.Pf.id ~start:0.0 ~duration:3600.0 ~procs:(Pf.processors c) () ]
  in
  let g =
    Psched_grid.Multi_cluster.simulate ~outages:site_down Psched_grid.Multi_cluster.Independent
      ~grid:Pf.ciment ~jobs:grid_jobs
  in
  Format.printf
    "@.site outage on CIMENT (independent placement): %d jobs re-routed, Cmax %.0f s@."
    g.Psched_grid.Multi_cluster.rerouted g.Psched_grid.Multi_cluster.makespan
