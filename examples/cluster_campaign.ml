(* A day on one cluster: the section-4 policies against a realistic
   multi-user stream (on-line, clairvoyant).

   Jobs arrive over 8 hours on a 64-processor cluster: a mix of
   moldable numerical tasks and rigid jobs.  We compare the on-line
   batch algorithm (3 + eps for Cmax), the bi-criteria doubling
   algorithm, and EASY/conservative backfilling with an a-priori
   allocation — the "which policy for which application?" question on
   one workload.

   Run with: dune exec examples/cluster_campaign.exe *)

open Psched_workload
open Psched_core
open Psched_sim

let () =
  let m = 64 in
  let rng = Psched_util.Rng.create 2004 in
  (* 120 jobs over ~8h: 60% moldable simulations, 40% rigid legacy jobs. *)
  let jobs =
    List.init 120 (fun id ->
        if Psched_util.Rng.int rng 10 < 6 then
          let t1 = Psched_util.Rng.lognormal rng ~mu:(log 1200.0) ~sigma:1.0 in
          let max_procs = 1 + Psched_util.Rng.int rng m in
          let seq_fraction = Psched_util.Rng.uniform rng 0.02 0.3 in
          Job.of_model
            ~weight:(Psched_util.Rng.uniform rng 1.0 10.0)
            ~id ~model:(Speedup.Amdahl { seq_fraction }) ~t1 ~max_procs ()
        else
          let procs = 1 + Psched_util.Rng.int rng 16 in
          let time = Psched_util.Rng.lognormal rng ~mu:(log 900.0) ~sigma:0.8 in
          Job.rigid ~weight:(Psched_util.Rng.uniform rng 1.0 10.0) ~id ~procs ~time ())
  in
  let jobs = Workload_gen.with_poisson_arrivals rng ~rate:(120.0 /. (8.0 *. 3600.0)) jobs in
  let lb_cmax = Lower_bounds.cmax ~m jobs in
  let lb_wc = Lower_bounds.sum_weighted_completion ~m jobs in
  let alloc () = Moldable_alloc.allocate (Moldable_alloc.work_bounded ~m ~delta:0.25) jobs in
  let policies =
    [
      ("batch on-line (MRT batches)", fun () -> Batch_online.with_mrt ~m jobs);
      ("bi-criteria doubling", fun () -> Bicriteria.schedule ~m jobs);
      ("EASY backfilling", fun () -> Backfilling.easy ~m (alloc ()));
      ("conservative backfilling", fun () -> Backfilling.conservative ~m (alloc ()));
    ]
  in
  Format.printf
    "one 64-proc cluster, 120 jobs over 8 hours; LB(Cmax)=%.0f s, LB(sum wC)=%.4g@.@." lb_cmax
    lb_wc;
  Format.printf "%-30s %10s %8s %12s %10s %10s@." "policy" "Cmax" "ratio" "sum wC" "ratio"
    "mean flow";
  List.iter
    (fun (name, run) ->
      let sched = run () in
      Validate.check_exn ~jobs sched;
      let metrics = Metrics.compute ~jobs sched in
      Format.printf "%-30s %10.0f %8.3f %12.4g %10.3f %10.0f@." name metrics.Metrics.makespan
        (metrics.Metrics.makespan /. lb_cmax)
        metrics.Metrics.sum_weighted_completion
        (metrics.Metrics.sum_weighted_completion /. lb_wc)
        metrics.Metrics.mean_flow)
    policies;
  Format.printf
    "@.Reading: batch/bi-criteria optimise guarantees; backfilling optimises flow — the paper's@.\
     point that the right policy depends on the application mix.@."
