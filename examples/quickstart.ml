(* Quickstart: build a handful of jobs, schedule them with three
   policies, validate, and compare the criteria of section 3.

   Run with: dune exec examples/quickstart.exe *)

open Psched_workload
open Psched_core
open Psched_sim

let () =
  let m = 8 in
  (* Four moldable tasks from speedup models, two rigid ones. *)
  let jobs =
    [
      Job.of_model ~id:0 ~model:(Speedup.Amdahl { seq_fraction = 0.1 }) ~t1:40.0 ~max_procs:8 ();
      Job.of_model ~id:1 ~model:(Speedup.Power { alpha = 0.8 }) ~t1:30.0 ~max_procs:6 ();
      Job.of_model ~weight:5.0 ~id:2 ~model:Speedup.Linear ~t1:16.0 ~max_procs:4 ();
      Job.of_model ~id:3 ~model:(Speedup.Amdahl { seq_fraction = 0.3 }) ~t1:25.0 ~max_procs:8 ();
      Job.rigid ~id:4 ~procs:3 ~time:12.0 ();
      Job.rigid ~weight:2.0 ~id:5 ~procs:1 ~time:20.0 ();
    ]
  in
  Format.printf "Jobs:@.";
  List.iter (fun j -> Format.printf "  %a@." Job.pp j) jobs;
  Format.printf "@.Lower bounds on %d processors: Cmax >= %.2f, sum wC >= %.2f@.@." m
    (Lower_bounds.cmax ~m jobs)
    (Lower_bounds.sum_weighted_completion ~m jobs);
  let policies =
    [
      ("MRT (makespan)", fun () -> Mrt.schedule ~m jobs);
      ("bi-criteria (both)", fun () -> Bicriteria.schedule ~m jobs);
      ( "a-priori alloc + conservative backfilling",
        fun () ->
          Backfilling.conservative ~m
            (Moldable_alloc.allocate (Moldable_alloc.work_bounded ~m ~delta:0.25) jobs) );
    ]
  in
  List.iter
    (fun (name, run) ->
      let sched = run () in
      (* Every schedule in this library can be checked by the same
         oracle: exactly-once placement, feasible allocations, release
         dates, capacity. *)
      Validate.check_exn ~jobs sched;
      let metrics = Metrics.compute ~jobs sched in
      Format.printf "=== %s ===@.%a@.%s@." name Metrics.pp metrics (Gantt.render ~max_rows:8 sched))
    policies
