(* Divisible load in practice (section 2.1): searching a large data
   set distributed from a master — the paper's database-search example
   where "there is only one processor which [has] to send back data".

   A 50 GB scan is distributed over the CIMENT clusters seen as DLT
   workers.  We compare: one round with the optimal (bandwidth) order,
   one round with the worst order, multi-round distribution, dynamic
   work stealing, and the steady-state bound.

   Run with: dune exec examples/dlt_search.exe *)

open Psched_dlt
module Pf = Psched_platform.Platform

let () =
  (* One unit = 100 MB; 50 GB = 500 units.  Worker compute rate: 50 ms
     per 100 MB per processor at speed 1. *)
  let load = 500.0 in
  let workers = List.map Worker.of_cluster Pf.ciment.Pf.clusters in
  Format.printf "workers (from the Figure 3 clusters):@.";
  List.iter (fun w -> Format.printf "  %a@." Worker.pp w) workers;
  let opt = Star.schedule ~load workers in
  Format.printf "@.single round, bandwidth order: makespan %.2f s@." opt.Star.makespan;
  List.iter
    (fun ((w : Worker.t), a) -> Format.printf "  worker %d computes %4.1f%%@." w.Worker.id (100.0 *. a))
    opt.Star.alphas;
  let worst =
    Star.solve_order ~load
      (List.sort (fun (a : Worker.t) b -> compare b.Worker.z a.Worker.z) workers)
  in
  Format.printf "single round, worst order:     makespan %.2f s@." worst.Star.makespan;
  let multi = Multiround.best_rounds ~load workers in
  Format.printf "multi-round (R=%d):             makespan %.2f s@." multi.Multiround.rounds
    multi.Multiround.makespan;
  let with_return = Multiround.best_rounds ~return_fraction:0.05 ~load workers in
  Format.printf "multi-round + 5%% results back: makespan %.2f s@."
    with_return.Multiround.makespan;
  (* Dynamic distribution: the scan cut into 500 atomic files. *)
  let steal chunk =
    (Work_stealing.simulate ~units:500 ~chunk workers).Work_stealing.makespan
  in
  Format.printf "work stealing, chunk=1:        makespan %.2f s@." (steal 1);
  Format.printf "work stealing, chunk=20:       makespan %.2f s@." (steal 20);
  let steady = Steady_state.optimal workers in
  Format.printf "steady-state bound:            %.2f s (port used at %.0f%%)@."
    (Steady_state.makespan_estimate ~tasks:500 steady)
    (100.0 *. steady.Steady_state.port_utilisation);
  Format.printf
    "@.Reading: ordering matters on heterogeneous links; multi-round overlaps communication@.\
     with computation; dynamic stealing approaches the static optimum without any model.@."
