(* The paper's question, executed: for each application class, run the
   candidate policies and report which wins under each criterion of
   section 3.

   Classes:  A. sequential batch (the physicists)
             B. moldable parallel simulations
             C. rigid legacy + moldable mix
             D. multi-parametric campaign (divisible view)

   Run with: dune exec examples/which_policy.exe *)

open Psched_workload
open Psched_core
open Psched_sim

let m = 64

let policies =
  [
    ("MRT batches (on-line)", fun jobs -> Batch_online.with_mrt ~m jobs);
    ("bi-criteria", fun jobs -> Bicriteria.schedule ~m jobs);
    ( "EASY backfilling",
      fun jobs ->
        Backfilling.easy ~m
          (Moldable_alloc.allocate (Moldable_alloc.work_bounded ~m ~delta:0.25) jobs) );
    ( "SJF queue",
      fun jobs ->
        Queue_policies.schedule Queue_policies.Sjf ~m
          (Moldable_alloc.allocate (Moldable_alloc.work_bounded ~m ~delta:0.25) jobs) );
  ]

let classes rng =
  [
    ( "A. sequential batch",
      Workload_gen.fig2_nonparallel rng ~n:120 |> Workload_gen.with_poisson_arrivals rng ~rate:0.3
    );
    ( "B. moldable simulations",
      Workload_gen.moldable_uniform rng ~n:80 ~m ~tmin:10.0 ~tmax:300.0
      |> Workload_gen.with_poisson_arrivals rng ~rate:0.05 );
    ( "C. rigid + moldable mix",
      (let rigid = Workload_gen.rigid_uniform rng ~n:40 ~m:(m / 2) ~tmin:10.0 ~tmax:200.0 in
       let moldable = Workload_gen.moldable_uniform rng ~n:40 ~m ~tmin:10.0 ~tmax:200.0 in
       let moldable = List.map (fun (j : Job.t) -> { j with Job.id = j.Job.id + 40 }) moldable in
       Workload_gen.with_poisson_arrivals rng ~rate:0.1 (rigid @ moldable)) );
    ( "D. parametric campaign",
      List.init 30 (fun id ->
          Job.make ~id (Job.Multiparam { count = 50 + (7 * id); unit_time = 2.0 })) );
  ]

let () =
  let rng = Psched_util.Rng.create 20260706 in
  let header = Printf.sprintf "%-26s" "policy" in
  List.iter
    (fun (class_name, jobs) ->
      Printf.printf "=== %s (%d jobs) ===\n" class_name (List.length jobs);
      Printf.printf "%s %10s %12s %12s %10s\n" header "Cmax" "sum wC" "mean flow" "stretch";
      let results =
        List.map
          (fun (name, run) ->
            let sched = run jobs in
            Validate.check_exn ~jobs sched;
            (name, Metrics.compute ~jobs sched))
          policies
      in
      List.iter
        (fun (name, x) ->
          Printf.printf "%-26s %10.0f %12.4g %12.0f %10.2f\n" name x.Metrics.makespan
            x.Metrics.sum_weighted_completion x.Metrics.mean_flow x.Metrics.mean_stretch)
        results;
      let winner select label =
        let name, _ =
          List.fold_left (fun (bn, bv) (n, v) -> if select v < bv then (n, select v) else (bn, bv))
            ("", infinity) results
        in
        Printf.printf "  -> best %s: %s\n" label name
      in
      winner (fun x -> x.Metrics.makespan) "makespan";
      winner (fun x -> x.Metrics.sum_weighted_completion) "weighted completion";
      winner (fun x -> x.Metrics.mean_stretch) "stretch";
      print_newline ())
    (classes rng);
  print_endline "No policy wins everywhere - the paper's point, reproduced.";
  (* The campaign class is really a DLT problem: show the steady-state view. *)
  let workers = List.map Psched_dlt.Worker.of_cluster Psched_platform.Platform.ciment.Psched_platform.Platform.clusters in
  let alloc = Psched_dlt.Steady_state.optimal workers in
  Printf.printf "\n(D under the DLT lens: steady-state throughput %.1f runs/s across CIMENT)\n"
    alloc.Psched_dlt.Steady_state.throughput
