(* Trace replay: the workflow of a scheduling study on a real log.

   1. Generate a community workload and write it as an SWF trace (the
      Parallel Workloads Archive format);
   2. reload the trace (as any archive trace would be loaded);
   3. replay it under several policies — clairvoyant EASY, EASY with
      x3 user over-estimates, conservative backfilling, SJF — and
      compare the criteria of section 3.

   Run with: dune exec examples/trace_replay.exe *)

open Psched_workload
open Psched_core
open Psched_sim

let () =
  let m = 64 in
  let rng = Psched_util.Rng.create 777 in
  let jobs =
    Workload_gen.rigid_uniform rng ~n:150 ~m:32 ~tmin:10.0 ~tmax:600.0
    |> Workload_gen.with_poisson_arrivals rng ~rate:0.02
  in
  let path = Filename.temp_file "psched_trace" ".swf" in
  Swf.save path jobs;
  Printf.printf "wrote %d jobs to %s\n" (List.length jobs) path;
  let replayed = Swf.load path in
  Sys.remove path;
  Printf.printf "reloaded %d jobs\n\n" (List.length replayed);
  let allocated = List.map Packing.allocate_rigid replayed in
  let policies =
    [
      ("EASY (exact estimates)", fun () -> Backfilling.easy ~m allocated);
      ( "EASY (x3 over-estimates)",
        fun () ->
          Nonclairvoyant.easy ~estimator:(Nonclairvoyant.overestimate ~factor:3.0) ~m allocated );
      ("conservative", fun () -> Backfilling.conservative ~m allocated);
      ("SJF queue", fun () -> Queue_policies.schedule Queue_policies.Sjf ~m allocated);
    ]
  in
  Printf.printf "%-26s %10s %12s %12s %12s\n" "policy" "Cmax" "mean flow" "mean stretch"
    "max stretch";
  List.iter
    (fun (name, run) ->
      let sched = run () in
      Validate.check_exn ~jobs:replayed sched;
      let metrics = Metrics.compute ~jobs:replayed sched in
      Printf.printf "%-26s %10.0f %12.0f %12.2f %12.2f\n" name metrics.Metrics.makespan
        metrics.Metrics.mean_flow metrics.Metrics.mean_stretch metrics.Metrics.max_stretch)
    policies;
  print_newline ();
  print_endline
    "Reading: over-estimation barely hurts EASY (completions wake the scheduler early);";
  print_endline "SJF minimises stretch but can delay wide jobs - which policy for which users."
