(* The CIMENT light grid (Figures 1 and 3, section 5): four clusters,
   four communities, local jobs plus a multi-parametric campaign
   injected as best-effort grid jobs.

   Demonstrates:
   - the platform descriptions of Figures 1 and 3 as executable data;
   - multi-cluster placement policies (independent / centralized /
     exchange) on community workloads;
   - the CiGri best-effort mechanism on the largest cluster.

   Run with: dune exec examples/ciment_grid.exe *)

open Psched_workload
module Pf = Psched_platform.Platform

let () =
  Format.printf "%a@.@." Pf.pp Pf.ciment;
  let rng = Psched_util.Rng.create 31415 in
  (* Community streams over 12 hours: physicists (long sequential),
     computer scientists (short debug), two generic communities. *)
  let profiles =
    [
      Workload_gen.physicists ~community:0 ~m:208;
      Workload_gen.cs_debug ~community:1 ~m:96;
      Workload_gen.cs_debug ~community:2 ~m:80;
      Workload_gen.physicists ~community:3 ~m:48;
      (* "A majority of the jobs submitted in this context are
         multi-parametric jobs" — the campaigns CiGri spreads. *)
      Workload_gen.parametric_users ~community:0;
    ]
  in
  let jobs = Workload_gen.community_stream rng ~horizon:(12.0 *. 3600.0) ~profiles in
  (* Multi-parametric campaigns are handled by the best-effort layer,
     not the local schedulers: split them out, like CiGri does. *)
  let local_jobs, campaigns =
    List.partition (fun (j : Job.t) -> match j.shape with Job.Multiparam _ -> false | _ -> true)
      jobs
  in
  Format.printf "12h of submissions: %d local jobs, %d multi-parametric campaigns@.@."
    (List.length local_jobs) (List.length campaigns);
  (* 1. Link the clusters: the three policies of section 5.2. *)
  let policies =
    [
      ("independent", Psched_grid.Multi_cluster.Independent);
      ("centralized", Psched_grid.Multi_cluster.Centralized);
      ("exchange thr=1.5", Psched_grid.Multi_cluster.Exchange { threshold = 1.5 });
    ]
  in
  Format.printf "%-18s %10s %12s %10s %12s@." "policy" "Cmax" "mean flow" "fairness"
    "migrations";
  List.iter
    (fun (name, policy) ->
      let o = Psched_grid.Multi_cluster.simulate policy ~grid:Pf.ciment ~jobs:local_jobs in
      Format.printf "%-18s %10.0f %12.0f %10.3f %12d@." name o.Psched_grid.Multi_cluster.makespan
        o.Psched_grid.Multi_cluster.mean_flow o.Psched_grid.Multi_cluster.fairness
        o.Psched_grid.Multi_cluster.migrations)
    policies;
  (* 2. Feed one campaign to the biggest cluster as best-effort jobs. *)
  (match campaigns with
  | [] -> Format.printf "@.(no campaign submitted in this draw)@."
  | campaign :: _ ->
    let runs, unit_time =
      match campaign.Job.shape with
      | Job.Multiparam { count; unit_time } -> (count, unit_time)
      | _ -> assert false
    in
    let m = 208 in
    (* Local load of the icluster2 community on its own machine. *)
    let local =
      List.filter (fun (j : Job.t) -> j.community = 0) local_jobs
      |> List.map Psched_core.Packing.allocate_rigid
    in
    let config = { Psched_grid.Best_effort.m; bag = runs; unit_time; horizon = 48.0 *. 3600.0 } in
    let o = Psched_grid.Best_effort.simulate config ~local in
    let u0, u1 = Psched_grid.Best_effort.utilisation_gain config ~local in
    Format.printf
      "@.best-effort campaign on icluster2 (%d runs x %.0f s): completed %d, killed %d times,@."
      runs unit_time o.Psched_grid.Best_effort.grid_completed
      o.Psched_grid.Best_effort.grid_killed;
    Format.printf "wasted %.0f proc.s; cluster utilisation %.3f -> %.3f; local jobs untouched.@."
      o.Psched_grid.Best_effort.wasted_time u0 u1)
